//! Architectural interpretation of `gis-ir` functions.

use gis_ir::{BlockId, FpBinOp, Function, FxBinOp, InstId, MemRef, Op, Reg, RegClass};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Limits and switches for [`execute`].
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Maximum dynamic instructions before aborting (guards against
    /// accidental infinite loops in generated or transformed code).
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 10_000_000,
        }
    }
}

/// An entry of the observable output trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputEvent {
    /// A `PRINT` of the given value.
    Print(i64),
    /// A `CALL`, with the callee name and the argument register values.
    Call(String, Vec<i64>),
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The step limit was exhausted (see [`ExecConfig::max_steps`]).
    StepLimit { steps: u64 },
    /// A memory access used an address that is not 4-byte aligned.
    Unaligned { addr: i64 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit { steps } => {
                write!(f, "step limit exhausted after {steps} instructions")
            }
            ExecError::Unaligned { addr } => {
                write!(f, "unaligned memory access at address {addr:#x}")
            }
        }
    }
}

impl Error for ExecError {}

/// The result of a completed execution: observable behaviour plus the
/// dynamic block trace the timing simulator replays.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Observable output in order.
    pub output: Vec<OutputEvent>,
    /// Final memory (word values by byte address).
    pub memory: BTreeMap<i64, i64>,
    /// Dynamic instruction count.
    pub steps: u64,
    /// The sequence of basic blocks entered.
    pub block_trace: Vec<BlockId>,
    /// Per conditional branch: `(taken, not taken)` execution counts —
    /// the raw material for a branch profile (see `gis-core`'s
    /// `BranchProfile::from_counts` and
    /// [`ExecOutcome::branch_count_triples`]).
    pub branch_counts: HashMap<InstId, (u64, u64)>,
}

impl ExecOutcome {
    /// Branch counts as `(branch, taken, not_taken)` triples, ready for a
    /// profile constructor.
    pub fn branch_count_triples(&self) -> Vec<(InstId, u64, u64)> {
        let mut v: Vec<(InstId, u64, u64)> = self
            .branch_counts
            .iter()
            .map(|(&i, &(t, n))| (i, t, n))
            .collect();
        v.sort();
        v
    }

    /// Just the printed values (a common assertion in tests).
    pub fn printed(&self) -> Vec<i64> {
        self.output
            .iter()
            .filter_map(|e| match e {
                OutputEvent::Print(v) => Some(*v),
                OutputEvent::Call(..) => None,
            })
            .collect()
    }

    /// Whether two executions are observationally equivalent: same output
    /// trace and same final memory. Final *register* state is deliberately
    /// excluded — renaming and speculation legitimately change dead
    /// registers.
    pub fn equivalent(&self, other: &ExecOutcome) -> bool {
        self.output == other.output && self.memory == other.memory
    }

    /// Describes the first observable difference from `other` (the first
    /// diverging output event, then the first differing memory word), or
    /// `None` when the two outcomes are [equivalent](Self::equivalent).
    /// Differential testing harnesses use this to turn a bare "not
    /// equivalent" into an actionable diagnostic.
    pub fn explain_difference(&self, other: &ExecOutcome) -> Option<String> {
        for (i, (a, b)) in self.output.iter().zip(other.output.iter()).enumerate() {
            if a != b {
                return Some(format!("output[{i}]: {a:?} vs {b:?}"));
            }
        }
        if self.output.len() != other.output.len() {
            return Some(format!(
                "output length: {} events vs {} events",
                self.output.len(),
                other.output.len()
            ));
        }
        let addrs: std::collections::BTreeSet<i64> = self
            .memory
            .keys()
            .chain(other.memory.keys())
            .copied()
            .collect();
        for addr in addrs {
            let a = self.memory.get(&addr);
            let b = other.memory.get(&addr);
            if a != b {
                let show = |v: Option<&i64>| match v {
                    Some(v) => v.to_string(),
                    None => "<unwritten>".to_owned(),
                };
                return Some(format!("memory[{addr:#x}]: {} vs {}", show(a), show(b)));
            }
        }
        None
    }
}

#[derive(Debug, Default)]
struct State {
    gpr: HashMap<u32, i64>,
    fpr: HashMap<u32, f64>,
    cr: HashMap<u32, u8>,
    mem: BTreeMap<i64, i64>,
}

impl State {
    fn read_g(&self, r: Reg) -> i64 {
        debug_assert_eq!(r.class(), RegClass::Gpr);
        self.gpr.get(&r.index()).copied().unwrap_or(0)
    }
    fn write_g(&mut self, r: Reg, v: i64) {
        self.gpr.insert(r.index(), v);
    }
    fn read_f(&self, r: Reg) -> f64 {
        self.fpr.get(&r.index()).copied().unwrap_or(0.0)
    }
    fn write_f(&mut self, r: Reg, v: f64) {
        self.fpr.insert(r.index(), v);
    }
    fn read_cr(&self, r: Reg) -> u8 {
        self.cr.get(&r.index()).copied().unwrap_or(0)
    }
    fn write_cr(&mut self, r: Reg, v: u8) {
        self.cr.insert(r.index(), v);
    }
    fn load(&self, mem: &MemRef, base: i64) -> Result<i64, ExecError> {
        let addr = base.wrapping_add(mem.disp);
        if addr % 4 != 0 {
            return Err(ExecError::Unaligned { addr });
        }
        Ok(self.mem.get(&addr).copied().unwrap_or(0))
    }
    fn store(&mut self, mem: &MemRef, base: i64, v: i64) -> Result<(), ExecError> {
        let addr = base.wrapping_add(mem.disp);
        if addr % 4 != 0 {
            return Err(ExecError::Unaligned { addr });
        }
        self.mem.insert(addr, v);
        Ok(())
    }
}

fn fx_eval(op: FxBinOp, a: i64, b: i64) -> i64 {
    // One shared definition of the total fixed point semantics lives on
    // FxBinOp (the constant folder uses the same).
    op.eval(a, b)
}

fn fp_eval(op: FpBinOp, a: f64, b: f64) -> f64 {
    match op {
        FpBinOp::Add => a + b,
        FpBinOp::Sub => a - b,
        FpBinOp::Mul => a * b,
        FpBinOp::Div => a / b,
    }
}

fn cmp_bits(ord: std::cmp::Ordering) -> u8 {
    match ord {
        std::cmp::Ordering::Less => 0x1,
        std::cmp::Ordering::Greater => 0x2,
        std::cmp::Ordering::Equal => 0x4,
    }
}

/// Deterministic stand-in semantics for an opaque call: each def receives
/// a value mixed from the callee name, the argument values and the def's
/// position. Deterministic so that differential testing works.
fn call_value(name: &str, args: &[i64], slot: usize) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in name.bytes() {
        mix(byte as u64);
    }
    for &a in args {
        mix(a as u64);
    }
    mix(slot as u64);
    h as i64
}

/// Runs `f` with the given initial memory (`(byte address, value)` pairs).
///
/// # Errors
///
/// Returns [`ExecError::StepLimit`] when the dynamic instruction budget is
/// exhausted and [`ExecError::Unaligned`] on a misaligned access.
pub fn execute(
    f: &Function,
    initial_memory: &[(i64, i64)],
    config: &ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    let mut st = State::default();
    for &(addr, v) in initial_memory {
        if addr % 4 != 0 {
            return Err(ExecError::Unaligned { addr });
        }
        st.mem.insert(addr, v);
    }
    let mut output = Vec::new();
    let mut steps = 0u64;
    let mut block_trace = Vec::new();
    let mut branch_counts: HashMap<InstId, (u64, u64)> = HashMap::new();
    let mut next: Option<BlockId> = Some(f.entry());

    while let Some(bid) = next {
        block_trace.push(bid);
        let block = f.block(bid);
        let mut transferred = false;
        for inst in block.insts() {
            steps += 1;
            if steps > config.max_steps {
                return Err(ExecError::StepLimit { steps });
            }
            match &inst.op {
                Op::Load { rt, mem } => {
                    let v = st.load(mem, st.read_g(mem.base))?;
                    if rt.class() == RegClass::Fpr {
                        st.write_f(*rt, f64::from_bits(v as u64));
                    } else {
                        st.write_g(*rt, v);
                    }
                }
                Op::LoadUpdate { rt, mem } => {
                    let base = st.read_g(mem.base);
                    let v = st.load(mem, base)?;
                    if rt.class() == RegClass::Fpr {
                        st.write_f(*rt, f64::from_bits(v as u64));
                    } else {
                        st.write_g(*rt, v);
                    }
                    st.write_g(mem.base, base.wrapping_add(mem.disp));
                }
                Op::Store { rs, mem } => {
                    let v = if rs.class() == RegClass::Fpr {
                        st.read_f(*rs).to_bits() as i64
                    } else {
                        st.read_g(*rs)
                    };
                    st.store(mem, st.read_g(mem.base), v)?;
                }
                Op::StoreUpdate { rs, mem } => {
                    let base = st.read_g(mem.base);
                    let v = if rs.class() == RegClass::Fpr {
                        st.read_f(*rs).to_bits() as i64
                    } else {
                        st.read_g(*rs)
                    };
                    st.store(mem, base, v)?;
                    st.write_g(mem.base, base.wrapping_add(mem.disp));
                }
                Op::LoadImm { rt, imm } => st.write_g(*rt, *imm),
                Op::Move { rt, rs } => match rt.class() {
                    RegClass::Gpr => {
                        let v = st.read_g(*rs);
                        st.write_g(*rt, v);
                    }
                    RegClass::Fpr => {
                        let v = st.read_f(*rs);
                        st.write_f(*rt, v);
                    }
                    RegClass::Cr => {
                        let v = st.read_cr(*rs);
                        st.write_cr(*rt, v);
                    }
                },
                Op::Fx { op, rt, ra, rb } => {
                    let v = fx_eval(*op, st.read_g(*ra), st.read_g(*rb));
                    st.write_g(*rt, v);
                }
                Op::FxImm { op, rt, ra, imm } => {
                    let v = fx_eval(*op, st.read_g(*ra), *imm);
                    st.write_g(*rt, v);
                }
                Op::Fp { op, rt, ra, rb } => {
                    let v = fp_eval(*op, st.read_f(*ra), st.read_f(*rb));
                    st.write_f(*rt, v);
                }
                Op::Compare { crt, ra, rb } => {
                    let bits = cmp_bits(st.read_g(*ra).cmp(&st.read_g(*rb)));
                    st.write_cr(*crt, bits);
                }
                Op::CompareImm { crt, ra, imm } => {
                    let bits = cmp_bits(st.read_g(*ra).cmp(imm));
                    st.write_cr(*crt, bits);
                }
                Op::FpCompare { crt, ra, rb } => {
                    let (a, b) = (st.read_f(*ra), st.read_f(*rb));
                    // NaN compares as "equal bit clear, lt/gt clear".
                    let bits = a.partial_cmp(&b).map_or(0, cmp_bits);
                    st.write_cr(*crt, bits);
                }
                Op::BranchCond {
                    target,
                    cr,
                    bit,
                    when,
                } => {
                    let set = st.read_cr(*cr) & bit.mask() != 0;
                    let counts = branch_counts.entry(inst.id).or_insert((0, 0));
                    if set == *when {
                        counts.0 += 1;
                        next = Some(*target);
                        transferred = true;
                    } else {
                        counts.1 += 1;
                    }
                }
                Op::Branch { target } => {
                    next = Some(*target);
                    transferred = true;
                }
                Op::Ret => {
                    next = None;
                    transferred = true;
                }
                Op::Call { name, uses, defs } => {
                    let args: Vec<i64> = uses.iter().map(|u| st.read_g(*u)).collect();
                    for (slot, d) in defs.iter().enumerate() {
                        st.write_g(*d, call_value(name, &args, slot));
                    }
                    output.push(OutputEvent::Call(name.clone(), args));
                }
                Op::Print { rs } => output.push(OutputEvent::Print(st.read_g(*rs))),
            }
        }
        if !transferred {
            // Fall through to the next layout block.
            let n = bid.index() + 1;
            next = if n < f.num_blocks() {
                Some(BlockId::new(n as u32))
            } else {
                None
            };
        }
    }

    Ok(ExecOutcome {
        output,
        memory: st.mem,
        steps,
        block_trace,
        branch_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;
    use gis_workloads::minmax;

    fn run(text: &str) -> ExecOutcome {
        let f = parse_function(text).expect("parses");
        execute(&f, &[], &ExecConfig::default()).expect("executes")
    }

    #[test]
    fn explain_difference_pinpoints_first_divergence() {
        let a = run("func a\nE:\n LI r1=3\n PRINT r1\n RET\n");
        let b = run("func a\nE:\n LI r1=5\n PRINT r1\n RET\n");
        assert!(a.explain_difference(&a).is_none());
        let why = a.explain_difference(&b).expect("differs");
        assert!(why.contains("output[0]"), "{why}");
        assert!(why.contains("3") && why.contains("5"), "{why}");

        let c = run("func a\nE:\n LI r1=4096\n LI r2=9\n ST r2=>*(r1,0)\n RET\n");
        let d = run("func a\nE:\n LI r1=4096\n LI r2=8\n ST r2=>*(r1,4)\n RET\n");
        let why = c.explain_difference(&d).expect("differs");
        assert!(why.contains("memory[0x1000]"), "{why}");
        assert!(why.contains("<unwritten>"), "{why}");
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("func a\nE:\n LI r1=6\n LI r2=7\n MUL r3=r1,r2\n PRINT r3\n\
             DIVI r4=r3,0\n PRINT r4\n SI r5=r1,10\n PRINT r5\n RET\n");
        assert_eq!(out.printed(), vec![42, 0, -4]);
    }

    #[test]
    fn loads_stores_and_update_forms() {
        let out = run("func m\nE:\n LI r9=4096\n LI r1=11\n ST r1=>a(r9,0)\n\
             LU r2,r9=a(r9,0)\n PRINT r2\n PRINT r9\n RET\n");
        // LU with disp 0: loads the stored 11, base unchanged (+0).
        assert_eq!(out.printed(), vec![11, 4096]);
        assert_eq!(out.memory.get(&4096), Some(&11));
    }

    #[test]
    fn branches_and_loop() {
        let out = run(
            "func l\nE:\n LI r1=0\n LI r2=5\nL:\n AI r1=r1,1\n C cr0=r1,r2\n BT L,cr0,0x1/lt\nX:\n PRINT r1\n RET\n",
        );
        assert_eq!(out.printed(), vec![5]);
        // Block trace: entry, 5 loop iterations, exit.
        assert_eq!(out.block_trace.len(), 7);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let f = parse_function("func i\nL:\n B L\n").expect("parses");
        let err = execute(&f, &[], &ExecConfig { max_steps: 100 }).unwrap_err();
        assert!(matches!(err, ExecError::StepLimit { .. }));
    }

    #[test]
    fn unaligned_access_detected() {
        let f = parse_function("func u\nE:\n LI r9=3\n L r1=a(r9,0)\n RET\n").expect("parses");
        let err = execute(&f, &[], &ExecConfig::default()).unwrap_err();
        assert_eq!(err, ExecError::Unaligned { addr: 3 });
    }

    #[test]
    fn calls_are_deterministic_and_traced() {
        let a = run("func c\nE:\n LI r1=5\n CALL f(r1)->(r2)\n PRINT r2\n RET\n");
        let b = run("func c\nE:\n LI r1=5\n CALL f(r1)->(r2)\n PRINT r2\n RET\n");
        assert_eq!(a.output, b.output);
        assert!(
            matches!(a.output[0], OutputEvent::Call(ref n, ref args) if n == "f" && args == &[5])
        );
    }

    #[test]
    fn minmax_matches_reference_on_many_inputs() {
        let arrays: Vec<Vec<i64>> = vec![
            vec![5],
            vec![5, 5, 5],
            vec![3, 9, 1],
            vec![9, 7, 3],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
            vec![-5, 100, -200, 3, 17, 0, 8, -1, 2],
        ];
        for a in arrays {
            let f = minmax::figure2_function(a.len() as i64);
            let out =
                execute(&f, &minmax::memory_image(&a), &ExecConfig::default()).expect("executes");
            let (min, max) = minmax::reference_minmax(&a);
            assert_eq!(out.printed(), vec![min, max], "array {a:?}");
        }
    }

    #[test]
    fn equivalence_ignores_registers_but_not_output() {
        let a = run("func x\nE:\n LI r1=1\n PRINT r1\n LI r9=99\n RET\n");
        let b = run("func x\nE:\n LI r5=1\n PRINT r5\n RET\n");
        assert!(a.equivalent(&b), "dead registers don't matter");
        let c = run("func x\nE:\n LI r1=2\n PRINT r1\n RET\n");
        assert!(!a.equivalent(&c));
    }
}
