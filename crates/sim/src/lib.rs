//! Architectural and timing simulation of the parametric machine.
//!
//! The paper evaluates on real RS/6000 hardware; this crate is the
//! substitution (see DESIGN.md). It has two halves:
//!
//! * [`execute`] interprets a `gis-ir` function with architectural state
//!   (registers, word-addressed memory, an observable output trace). It is
//!   the *oracle* for semantic preservation: a scheduled program must
//!   produce the same output trace and final memory as the original.
//!
//! * [`TimingSim`] replays the dynamic block trace of an execution against
//!   a [`MachineDescription`](gis_machine::MachineDescription) and reports cycle counts. The model is
//!   calibrated against §3 of the paper: per-unit-kind in-order issue,
//!   hardware interlocks realizing the pairwise delays, units running in
//!   parallel, and branches acting as dispatch points (no instruction
//!   issues earlier than the cycle in which the last preceding branch
//!   issued). Under this model the Figure 2 loop costs exactly 20, 21 or
//!   22 cycles per iteration for 0/1/2 min/max updates — the paper's own
//!   numbers — and the test suite pins that down.
//!
//! # Example
//!
//! ```
//! use gis_sim::{execute, ExecConfig};
//! use gis_workloads::minmax;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = [3, 9, 1];
//! let f = minmax::figure2_function(a.len() as i64);
//! let out = execute(&f, &minmax::memory_image(&a), &ExecConfig::default())?;
//! assert_eq!(out.printed(), vec![1, 9]); // min, max
//! # Ok(())
//! # }
//! ```

mod exec;
mod timing;

pub use exec::{execute, ExecConfig, ExecError, ExecOutcome, OutputEvent};
pub use timing::{CycleRow, DynIssue, Timeline, TimingReport, TimingSim};
