//! Cycle-level timing of a dynamic instruction stream.
//!
//! The model (calibrated against §3 of the paper — see the crate docs):
//!
//! * every instruction issues to a free unit of its kind; a unit stays
//!   busy for the instruction's execution time;
//! * operands become usable `exec + delay(producer, consumer)` cycles
//!   after the producer issues (hardware interlocks);
//! * unit kinds run in parallel, but no instruction issues *earlier* than
//!   the cycle in which the last preceding branch issued — branches are
//!   the machine's dispatch points;
//! * at most `dispatch_width` instructions issue per cycle.
//!
//! Under this model one iteration of the paper's Figure 2 loop costs
//! exactly 20/21/22 cycles for 0/1/2 updates, Figure 5's schedule ~13 and
//! Figure 6's ~12 — the relative shape the paper reports.

use gis_ir::{BlockId, Function, InstId, OpClass, Reg};
use gis_machine::MachineDescription;
use std::collections::HashMap;
use std::fmt;

/// One dynamically issued instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynIssue {
    /// Which instruction.
    pub inst: InstId,
    /// The block instance it came from.
    pub block: BlockId,
    /// Issue cycle.
    pub cycle: u64,
    /// Execution time on its unit.
    pub exec: u32,
    /// The functional unit kind it ran on.
    pub unit: gis_machine::UnitKind,
    /// Cycles the hardware interlock held this instruction waiting for an
    /// operand, beyond its dispatch point and unit availability.
    pub stall: u64,
}

/// Aggregate results of a timed replay.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Total cycles: completion time of the last instruction.
    pub cycles: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Every issue, in dispatch order.
    pub issues: Vec<DynIssue>,
}

impl TimingReport {
    /// Issue cycles of every dynamic occurrence of `inst`.
    pub fn issue_cycles_of(&self, inst: InstId) -> Vec<u64> {
        self.issues
            .iter()
            .filter(|d| d.inst == inst)
            .map(|d| d.cycle)
            .collect()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Busy fraction of each unit kind: `(kind name, utilization)` where
    /// utilization is busy-cycles divided by `total cycles × unit count`.
    pub fn utilization(&self, machine: &MachineDescription) -> Vec<(String, f64)> {
        let mut busy: Vec<u64> = vec![0; machine.num_unit_kinds()];
        for d in &self.issues {
            busy[d.unit.index()] += u64::from(d.exec);
        }
        machine
            .unit_kinds()
            .map(|k| {
                let capacity = self.cycles * u64::from(machine.unit_count(k));
                let frac = if capacity == 0 {
                    0.0
                } else {
                    busy[k.index()] as f64 / capacity as f64
                };
                (machine.unit_name(k).to_owned(), frac)
            })
            .collect()
    }

    /// The cycle-by-cycle timeline of this run: per-cycle unit occupancy,
    /// the instructions issued, and how many instructions sat in an
    /// operand interlock.
    pub fn timeline(&self, machine: &MachineDescription) -> Timeline {
        let n = self.cycles as usize;
        let kinds = machine.num_unit_kinds();
        let mut rows: Vec<CycleRow> = (0..n)
            .map(|c| CycleRow {
                cycle: c as u64,
                busy: vec![0; kinds],
                issued: Vec::new(),
                stalled: 0,
            })
            .collect();
        for d in &self.issues {
            for c in d.cycle..d.cycle + u64::from(d.exec) {
                if let Some(row) = rows.get_mut(c as usize) {
                    row.busy[d.unit.index()] += 1;
                }
            }
            if let Some(row) = rows.get_mut(d.cycle as usize) {
                row.issued.push(d.inst);
            }
            for c in d.cycle.saturating_sub(d.stall)..d.cycle {
                if let Some(row) = rows.get_mut(c as usize) {
                    row.stalled += 1;
                }
            }
        }
        Timeline {
            rows,
            units: machine
                .unit_kinds()
                .map(|k| (machine.unit_name(k).to_owned(), machine.unit_count(k)))
                .collect(),
        }
    }
}

/// One cycle of a [`Timeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleRow {
    /// The cycle number (0-based).
    pub cycle: u64,
    /// Busy unit instances of each kind, indexed like the machine's unit
    /// kinds.
    pub busy: Vec<u32>,
    /// Instructions that issued this cycle.
    pub issued: Vec<InstId>,
    /// Instructions held by an operand interlock during this cycle.
    pub stalled: u32,
}

/// A per-cycle view of a timed run — what every functional unit was doing
/// and where the interlocks bit. Built by [`TimingReport::timeline`];
/// [`Display`](fmt::Display) renders the whole run, [`Timeline::render`]
/// caps the row count for long traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// One row per cycle of the run.
    pub rows: Vec<CycleRow>,
    /// `(name, instance count)` of each unit kind, in kind order.
    pub units: Vec<(String, u32)>,
}

impl Timeline {
    /// Renders at most `max_rows` rows (plus a truncation note).
    pub fn render(&self, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "cycle");
        for (name, count) in &self.units {
            let _ = write!(out, "  {:>8}", format!("{name}({count})"));
        }
        let _ = writeln!(out, "  {:>7}  issued", "stalled");
        for row in self.rows.iter().take(max_rows) {
            let _ = write!(out, "{:>6}", row.cycle);
            for (k, (_, count)) in self.units.iter().enumerate() {
                let bar: String =
                    "#".repeat(row.busy[k] as usize) + &".".repeat((*count - row.busy[k]) as usize);
                let _ = write!(out, "  {bar:>8}");
            }
            let _ = write!(out, "  {:>7}  ", row.stalled);
            let insts: Vec<String> = row
                .issued
                .iter()
                .map(|i| format!("I{}", i.index()))
                .collect();
            let _ = writeln!(out, "{}", insts.join(" "));
        }
        if self.rows.len() > max_rows {
            let _ = writeln!(out, "... {} more cycles", self.rows.len() - max_rows);
        }
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(usize::MAX))
    }
}

/// Replays dynamic block traces against a machine description.
#[derive(Debug)]
pub struct TimingSim<'a> {
    f: &'a Function,
    machine: &'a MachineDescription,
}

impl<'a> TimingSim<'a> {
    /// Creates a simulator for `f` on `machine`.
    pub fn new(f: &'a Function, machine: &'a MachineDescription) -> Self {
        TimingSim { f, machine }
    }

    /// Times the given dynamic block trace (as produced by
    /// [`execute`](crate::execute)).
    pub fn run(&self, block_trace: &[BlockId]) -> TimingReport {
        // Per unit kind: next-free time of each unit instance.
        let mut units: Vec<Vec<u64>> = self
            .machine
            .unit_kinds()
            .map(|k| vec![0u64; self.machine.unit_count(k) as usize])
            .collect();
        // Producer bookkeeping per register: (producer class, issue cycle).
        let mut producer: HashMap<Reg, (OpClass, u64)> = HashMap::new();
        let mut issued_in_cycle: HashMap<u64, u32> = HashMap::new();
        let width = self.machine.dispatch_width();

        let mut last_branch_issue = 0u64;
        let mut issues: Vec<DynIssue> = Vec::new();
        let mut total_end = 0u64;

        for &bid in block_trace {
            for inst in self.f.block(bid).insts() {
                let class = inst.op.class();
                let exec = self.machine.exec_time(class);
                let kind = self.machine.unit_of(class);

                // Operand readiness via interlocks.
                let mut ready = last_branch_issue;
                for u in inst.op.uses() {
                    if let Some(&(pclass, pissue)) = producer.get(&u) {
                        let avail = pissue
                            + self.machine.exec_time(pclass) as u64
                            + self.machine.delay(pclass, class) as u64;
                        ready = ready.max(avail);
                    }
                }
                // Unit availability: the earliest-free unit of the kind.
                let pool = &mut units[kind.index()];
                let (slot, &free) = pool
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &f)| f)
                    .expect("unit kinds have at least one unit");
                // How long the interlock alone held this instruction (past
                // its dispatch point and the unit's own next-free time).
                let stall = ready.saturating_sub(last_branch_issue.max(free));
                let mut t = ready.max(free);
                // Dispatch width.
                while issued_in_cycle.get(&t).copied().unwrap_or(0) >= width {
                    t += 1;
                }

                pool[slot] = t + exec as u64;
                *issued_in_cycle.entry(t).or_insert(0) += 1;
                producer.extend(inst.op.defs().into_iter().map(|d| (d, (class, t))));
                if inst.op.is_branch() {
                    last_branch_issue = last_branch_issue.max(t);
                }
                total_end = total_end.max(t + exec as u64);
                issues.push(DynIssue {
                    inst: inst.id,
                    block: bid,
                    cycle: t,
                    exec,
                    unit: kind,
                    stall,
                });
            }
        }

        TimingReport {
            cycles: total_end,
            instructions: issues.len() as u64,
            issues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use gis_ir::parse_function;
    use gis_workloads::minmax;

    /// Cycles for one iteration of the Figure 2 loop on the given array
    /// (one iteration == array length 3): issue(I20) − issue(I1).
    fn figure2_iteration_cycles(a: &[i64]) -> u64 {
        assert_eq!(a.len(), 3);
        let f = minmax::figure2_function(3);
        let m = MachineDescription::rs6k();
        let out = execute(&f, &minmax::memory_image(a), &ExecConfig::default()).expect("runs");
        let report = TimingSim::new(&f, &m).run(&out.block_trace);
        let i1 = report.issue_cycles_of(InstId::new(1));
        let i20 = report.issue_cycles_of(InstId::new(20));
        assert_eq!(i1.len(), 1, "exactly one iteration");
        i20[0] - i1[0]
    }

    #[test]
    fn figure2_costs_20_cycles_with_no_updates() {
        // §3: "the code executes in 20, 21 or 22 cycles, depending on if
        // 0, 1 or 2 updates of max and min variables are done".
        assert_eq!(figure2_iteration_cycles(&[5, 5, 5]), 20);
    }

    #[test]
    fn figure2_costs_21_cycles_with_one_update() {
        assert_eq!(figure2_iteration_cycles(&[9, 7, 3]), 21);
    }

    #[test]
    fn figure2_costs_22_cycles_with_two_updates() {
        assert_eq!(figure2_iteration_cycles(&[3, 9, 1]), 22);
    }

    #[test]
    fn delayed_load_stalls_one_cycle() {
        let f = parse_function("func d\nE:\n (I0) L r1=a(r9,0)\n (I1) AI r2=r1,1\n (I2) RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        assert_eq!(report.issue_cycles_of(InstId::new(0)), vec![0]);
        // Load at 0, result interlocked until 0+1+1: one empty slot.
        assert_eq!(report.issue_cycles_of(InstId::new(1)), vec![2]);
    }

    #[test]
    fn compare_branch_delay_is_three_cycles() {
        let f = parse_function("func c\nE:\n (I0) C cr0=r1,r2\n (I1) BT E,cr0,0x1/lt\nX:\n RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0), BlockId::new(1)]);
        assert_eq!(
            report.issue_cycles_of(InstId::new(1)),
            vec![4],
            "compare at 0, branch at 0+1+3"
        );
    }

    #[test]
    fn independent_fx_and_branch_dual_issue() {
        // An unrelated fx instruction can share a cycle with a branch.
        let f = parse_function(
            "func p\nE:\n (I0) C cr0=r1,r2\n (I1) BT X,cr0,0x1/lt\nY:\n (I2) LI r3=1\nX:\n RET\n",
        )
        .expect("parses");
        let m = MachineDescription::rs6k();
        let report =
            TimingSim::new(&f, &m).run(&[BlockId::new(0), BlockId::new(1), BlockId::new(2)]);
        // Branch at 4 (dispatch point); the LI issues the same cycle.
        assert_eq!(report.issue_cycles_of(InstId::new(2)), vec![4]);
    }

    #[test]
    fn single_fx_unit_serializes() {
        let f = parse_function("func s\nE:\n (I0) LI r1=1\n (I1) LI r2=2\n (I2) LI r3=3\n RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        let cycles: Vec<u64> = (0..3)
            .map(|i| report.issue_cycles_of(InstId::new(i))[0])
            .collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        // A 2-wide machine issues two per cycle.
        let wide = MachineDescription::superscalar("w", 2, 1, 1);
        let report = TimingSim::new(&f, &wide).run(&[BlockId::new(0)]);
        let cycles: Vec<u64> = (0..3)
            .map(|i| report.issue_cycles_of(InstId::new(i))[0])
            .collect();
        assert_eq!(cycles, vec![0, 0, 1]);
    }

    #[test]
    fn multicycle_ops_hold_their_unit() {
        let f = parse_function("func m\nE:\n (I0) MUL r1=r2,r3\n (I1) LI r4=1\n RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        // MUL holds the fixed point unit for 5 cycles.
        assert_eq!(report.issue_cycles_of(InstId::new(1)), vec![5]);
    }

    #[test]
    fn ipc_reporting() {
        let f = parse_function("func i\nE:\n LI r1=1\n LI r2=2\n RET\n").expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        assert_eq!(report.instructions, 3);
        assert!(report.ipc() > 0.0);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use gis_ir::parse_function;

    #[test]
    fn utilization_accounts_for_busy_cycles() {
        let f =
            parse_function("func u\nE:\n (I0) LI r1=1\n (I1) LI r2=2\n (I2) LI r3=3\n (I3) RET\n")
                .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        let util = report.utilization(&m);
        let fixed = util.iter().find(|(n, _)| n == "fixed").expect("fixed unit");
        // Three single-cycle fx ops back to back saturate the unit (the
        // RET runs on the branch unit, in parallel).
        assert!((fixed.1 - 1.0).abs() < 1e-9, "got {}", fixed.1);
        assert_eq!(report.cycles, 3);
        let float = util.iter().find(|(n, _)| n == "float").expect("float unit");
        assert_eq!(float.1, 0.0, "no floating point work");
    }

    #[test]
    fn timeline_covers_every_cycle_within_unit_capacity() {
        let f =
            parse_function("func t\nE:\n (I0) LI r1=1\n (I1) LI r2=2\n (I2) LI r3=3\n (I3) RET\n")
                .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        let tl = report.timeline(&m);
        assert_eq!(tl.rows.len() as u64, report.cycles);
        for row in &tl.rows {
            for (k, (_, count)) in tl.units.iter().enumerate() {
                assert!(row.busy[k] <= *count, "occupancy within capacity");
            }
        }
        let issued: usize = tl.rows.iter().map(|r| r.issued.len()).sum();
        assert_eq!(issued as u64, report.instructions);
        // The single fixed-point unit is saturated all three cycles.
        let fixed = tl
            .units
            .iter()
            .position(|(n, _)| n == "fixed")
            .expect("fixed");
        assert!(tl.rows.iter().all(|r| r.busy[fixed] == 1));
    }

    #[test]
    fn timeline_shows_the_load_interlock_as_a_stall() {
        let f = parse_function("func d\nE:\n (I0) L r1=a(r9,0)\n (I1) AI r2=r1,1\n (I2) RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        // Load at 0; the AI is interlocked until cycle 2, so it stalls
        // through cycle 1.
        let ai = report
            .issues
            .iter()
            .find(|d| d.inst == InstId::new(1))
            .expect("issued");
        assert_eq!(ai.cycle, 2);
        assert_eq!(ai.stall, 1);
        let tl = report.timeline(&m);
        assert_eq!(tl.rows[1].stalled, 1);
        assert_eq!(tl.rows[0].stalled, 0);
        let text = tl.render(usize::MAX);
        assert!(
            text.contains("I1"),
            "issued column names instructions: {text}"
        );
    }

    #[test]
    fn timeline_render_caps_rows() {
        let f = parse_function("func c\nE:\n LI r1=1\n LI r2=2\n LI r3=3\n RET\n").expect("parses");
        let m = MachineDescription::rs6k();
        let report = TimingSim::new(&f, &m).run(&[BlockId::new(0)]);
        let tl = report.timeline(&m);
        let text = tl.render(1);
        assert!(text.contains("more cycles"), "{text}");
        assert_eq!(text.lines().count(), 3, "header, one row, truncation note");
    }

    #[test]
    fn floating_point_work_lands_on_the_float_unit() {
        let f = parse_function("func fp\nE:\n (I0) FA f1=f2,f3\n (I1) FM f4=f1,f1\n (I2) RET\n")
            .expect("parses");
        let m = MachineDescription::rs6k();
        let out = execute(&f, &[], &ExecConfig::default()).expect("runs");
        let report = TimingSim::new(&f, &m).run(&out.block_trace);
        let util = report.utilization(&m);
        let float = util.iter().find(|(n, _)| n == "float").expect("float unit");
        assert!(float.1 > 0.0);
        // FA at 0; FM waits for the 1-cycle float result delay (ready at
        // 0+1+1) and multiplies for 2 cycles.
        assert_eq!(report.issue_cycles_of(InstId::new(1)), vec![2]);
    }
}
