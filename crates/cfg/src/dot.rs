//! Graphviz DOT rendering of control flow graphs (paper Figure 3).
//!
//! The printer is open: [`cfg_to_dot_with`] accepts a [`DotOverlay`]
//! whose hooks can inject graph-level statements (legends, region
//! clusters), replace a block node's label text (before/after
//! instruction listings) and append extra edges (scheduler motion
//! arrows) — this is how `gis-viz` renders a recorded decision trace
//! onto the static graph. [`cfg_to_dot`] is the plain, undecorated
//! rendering.

use crate::graph::{Cfg, EdgeLabel, NodeId};
use gis_ir::Function;
use std::fmt::Write as _;

/// Escapes a string for use inside a double-quoted DOT identifier or
/// label (`\n` survives as the DOT line-break escape).
pub fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The quoted DOT node id the CFG printer uses for `n` — e.g.
/// `"BL0 (A)"` for block 0 labelled `A`, or bare `ENTRY`/`EXIT`.
/// Overlays use this to address nodes from extra statements.
pub fn dot_node_id(f: &Function, n: NodeId) -> String {
    match n.as_block() {
        Some(b) => format!("\"{} ({})\"", b, dot_escape(f.block(b).label())),
        None if n == NodeId::ENTRY => "ENTRY".to_owned(),
        None => "EXIT".to_owned(),
    }
}

/// Decoration hooks for the DOT printers. Every method defaults to
/// "contribute nothing", so `cfg_to_dot_with(f, cfg, &NoOverlay)` is
/// byte-identical to [`cfg_to_dot`].
pub trait DotOverlay {
    /// Statements emitted right after the graph header (graph attributes,
    /// legend nodes, `subgraph cluster_*` groupings).
    fn prelude(&self, out: &mut String) {
        let _ = out;
    }

    /// Replacement label text for the block with IR label `label`
    /// (already-escaped text; `\n` breaks lines). `None` keeps the
    /// default (the node id itself).
    fn node_text(&self, label: &str) -> Option<String> {
        let _ = label;
        None
    }

    /// Extra attributes (comma-joined DOT `key=value` pairs) for the
    /// block with IR label `label`.
    fn node_attrs(&self, label: &str) -> Option<String> {
        let _ = label;
        None
    }

    /// Statements emitted just before the closing brace (extra edges).
    fn epilogue(&self, out: &mut String) {
        let _ = out;
    }
}

/// The no-op overlay: decorates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOverlay;

impl DotOverlay for NoOverlay {}

/// Renders the CFG of `f` in Graphviz DOT syntax, one node per basic block
/// plus `ENTRY` and `EXIT`, with branch edges labelled `T`/`F` — the shape
/// of the paper's Figure 3.
pub fn cfg_to_dot(f: &Function, cfg: &Cfg) -> String {
    cfg_to_dot_with(f, cfg, &NoOverlay)
}

/// [`cfg_to_dot`] with decoration hooks: `overlay` may group nodes into
/// clusters, rewrite node labels and append annotated edges.
pub fn cfg_to_dot_with(f: &Function, cfg: &Cfg, overlay: &dyn DotOverlay) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dot_escape(f.name()));
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  ENTRY [shape=box]; EXIT [shape=box];");
    overlay.prelude(&mut out);
    let name = |n: NodeId| dot_node_id(f, n);
    // Decorated node declarations (only for blocks the overlay touches,
    // so the undecorated rendering stays minimal).
    for (bid, block) in f.blocks() {
        let mut attrs: Vec<String> = Vec::new();
        if let Some(text) = overlay.node_text(block.label()) {
            attrs.push(format!("label=\"{text}\""));
            attrs.push("shape=box".to_owned());
        }
        if let Some(extra) = overlay.node_attrs(block.label()) {
            attrs.push(extra);
        }
        if !attrs.is_empty() {
            let _ = writeln!(
                out,
                "  {} [{}];",
                name(NodeId::block(bid)),
                attrs.join(", ")
            );
        }
    }
    for n in cfg.nodes() {
        for e in cfg.succs(n) {
            match e.label {
                EdgeLabel::Always => {
                    let _ = writeln!(out, "  {} -> {};", name(n), name(e.to));
                }
                l => {
                    let _ = writeln!(out, "  {} -> {} [label=\"{l}\"];", name(n), name(e.to));
                }
            }
        }
    }
    overlay.epilogue(&mut out);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    #[test]
    fn dot_contains_all_edges() {
        let f =
            parse_function("func d\nA:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\nB:\n B D\nC:\nD:\n RET\n")
                .expect("parses");
        let cfg = Cfg::new(&f);
        let dot = cfg_to_dot(&f, &cfg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("ENTRY -> \"BL0 (A)\""), "{dot}");
        assert!(
            dot.contains("\"BL0 (A)\" -> \"BL2 (C)\" [label=\"T\"]"),
            "{dot}"
        );
        assert!(
            dot.contains("\"BL0 (A)\" -> \"BL1 (B)\" [label=\"F\"]"),
            "{dot}"
        );
        assert!(dot.contains("\"BL3 (D)\" -> EXIT"), "{dot}");
    }

    #[test]
    fn no_overlay_matches_the_plain_printer() {
        let f =
            parse_function("func d\nA:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\nB:\n B D\nC:\nD:\n RET\n")
                .expect("parses");
        let cfg = Cfg::new(&f);
        assert_eq!(cfg_to_dot(&f, &cfg), cfg_to_dot_with(&f, &cfg, &NoOverlay));
    }

    #[test]
    fn overlay_hooks_fire_in_order() {
        struct Marker;
        impl DotOverlay for Marker {
            fn prelude(&self, out: &mut String) {
                out.push_str("  // prelude\n");
            }
            fn node_text(&self, label: &str) -> Option<String> {
                (label == "A").then(|| "A\\nbefore: I0".to_owned())
            }
            fn node_attrs(&self, label: &str) -> Option<String> {
                (label == "A").then(|| "style=filled".to_owned())
            }
            fn epilogue(&self, out: &mut String) {
                out.push_str("  \"BL1 (B)\" -> \"BL0 (A)\" [label=\"I3\", style=bold];\n");
            }
        }
        let f = parse_function("func d\nA:\n LI r1=1\nB:\n RET\n").expect("parses");
        let cfg = Cfg::new(&f);
        let dot = cfg_to_dot_with(&f, &cfg, &Marker);
        assert!(dot.contains("// prelude"), "{dot}");
        assert!(
            dot.contains("\"BL0 (A)\" [label=\"A\\nbefore: I0\", shape=box, style=filled];"),
            "{dot}"
        );
        assert!(
            dot.contains("\"BL1 (B)\" -> \"BL0 (A)\" [label=\"I3\", style=bold];"),
            "{dot}"
        );
        let prelude = dot.find("// prelude").expect("prelude");
        let edge = dot.find("[label=\"I3\"").expect("edge");
        assert!(prelude < edge, "prelude precedes epilogue");
    }

    #[test]
    fn escaping_guards_quotes_and_newlines() {
        assert_eq!(dot_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
