//! Graphviz DOT rendering of control flow graphs (paper Figure 3).

use crate::graph::{Cfg, EdgeLabel, NodeId};
use gis_ir::Function;
use std::fmt::Write as _;

/// Renders the CFG of `f` in Graphviz DOT syntax, one node per basic block
/// plus `ENTRY` and `EXIT`, with branch edges labelled `T`/`F` — the shape
/// of the paper's Figure 3.
pub fn cfg_to_dot(f: &Function, cfg: &Cfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", f.name());
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  ENTRY [shape=box]; EXIT [shape=box];");
    let name = |n: NodeId| match n.as_block() {
        Some(b) => format!("\"{} ({})\"", b, f.block(b).label()),
        None if n == NodeId::ENTRY => "ENTRY".to_owned(),
        None => "EXIT".to_owned(),
    };
    for n in cfg.nodes() {
        for e in cfg.succs(n) {
            match e.label {
                EdgeLabel::Always => {
                    let _ = writeln!(out, "  {} -> {};", name(n), name(e.to));
                }
                l => {
                    let _ = writeln!(out, "  {} -> {} [label=\"{l}\"];", name(n), name(e.to));
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    #[test]
    fn dot_contains_all_edges() {
        let f =
            parse_function("func d\nA:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\nB:\n B D\nC:\nD:\n RET\n")
                .expect("parses");
        let cfg = Cfg::new(&f);
        let dot = cfg_to_dot(&f, &cfg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("ENTRY -> \"BL0 (A)\""), "{dot}");
        assert!(
            dot.contains("\"BL0 (A)\" -> \"BL2 (C)\" [label=\"T\"]"),
            "{dot}"
        );
        assert!(
            dot.contains("\"BL0 (A)\" -> \"BL1 (B)\" [label=\"F\"]"),
            "{dot}"
        );
        assert!(dot.contains("\"BL3 (D)\" -> EXIT"), "{dot}");
    }
}
