//! Back edges, natural loops, nesting and reducibility.
//!
//! The paper schedules *regions*: strongly connected components that
//! correspond to loops, found here as natural loops of dominance back
//! edges, under the standing assumption (§4.1) that the flow graph is
//! reducible — which this module also checks.

use crate::dom::DomTree;
use crate::graph::{Cfg, NodeId};
use gis_ir::BlockId;

/// Identifies a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(u32);

impl LoopId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A natural loop: the blocks that can reach a latch of a dominance back
/// edge without passing its header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (the unique entry; dominates every block in the loop).
    pub header: BlockId,
    /// Sources of the back edges into the header.
    pub latches: Vec<BlockId>,
    /// Every block in the loop (sorted; includes the header and the blocks
    /// of any nested loops).
    pub blocks: Vec<BlockId>,
    /// The directly enclosing loop.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth: 0 for outermost loops.
    pub depth: usize,
}

impl NaturalLoop {
    /// Whether `b` belongs to this loop (including nested loops).
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// The forest of natural loops of a function, with a reducibility verdict.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    innermost: Vec<Option<LoopId>>,
    reducible: bool,
}

impl LoopForest {
    /// Computes the loop forest of `cfg` (which must be the CFG the
    /// supplied analyses came from).
    pub fn new(cfg: &Cfg, dom: &DomTree) -> Self {
        // 1. Dominance back edges, grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for n in cfg.nodes() {
            let Some(a) = n.as_block() else { continue };
            for e in cfg.succs(n) {
                let Some(b) = e.to.as_block() else { continue };
                if dom.dominates(e.to, n) {
                    match by_header.iter_mut().find(|(h, _)| *h == b) {
                        Some((_, latches)) => latches.push(a),
                        None => by_header.push((b, vec![a])),
                    }
                }
            }
        }

        // 2. Natural loop bodies by backwards reachability from the latches.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (header, latches) in by_header {
            let mut blocks = vec![header];
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if l != header && !blocks.contains(&l) {
                    blocks.push(l);
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for e in cfg.preds(NodeId::block(b)) {
                    let Some(p) = e.to.as_block() else { continue };
                    if !blocks.contains(&p) {
                        blocks.push(p);
                        stack.push(p);
                    }
                }
            }
            blocks.sort();
            loops.push(NaturalLoop {
                header,
                latches,
                blocks,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }

        // 3. Nesting: order loops by body size; the parent of L is the
        //    smallest strictly larger loop whose body contains L's.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        for (oi, &i) in order.iter().enumerate() {
            for &j in &order[oi + 1..] {
                let contains_all = loops[i].blocks.iter().all(|b| loops[j].contains(*b));
                if contains_all && loops[j].blocks.len() > loops[i].blocks.len() {
                    loops[i].parent = Some(LoopId(j as u32));
                    loops[j].children.push(LoopId(i as u32));
                    break;
                }
            }
        }
        // Depths from the parent chains.
        for i in 0..loops.len() {
            let mut d = 0;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // 4. Innermost loop per block: assign from outermost to innermost.
        let mut innermost: Vec<Option<LoopId>> = vec![None; cfg.num_blocks()];
        let mut by_size_desc = order;
        by_size_desc.reverse();
        for &i in &by_size_desc {
            for &b in &loops[i].blocks {
                innermost[b.index()] = Some(LoopId(i as u32));
            }
        }

        // 5. Reducibility: with all dominance back edges removed, the
        //    remaining graph must be acyclic.
        let reducible = {
            let n = cfg.num_nodes();
            let mut indeg = vec![0usize; n];
            let mut fwd: Vec<Vec<NodeId>> = vec![Vec::new(); n];
            for from in cfg.nodes() {
                for e in cfg.succs(from) {
                    if dom.dominates(e.to, from) {
                        continue; // back edge
                    }
                    fwd[from.index()].push(e.to);
                    indeg[e.to.index()] += 1;
                }
            }
            let mut queue: Vec<NodeId> = cfg.nodes().filter(|x| indeg[x.index()] == 0).collect();
            let mut seen = 0;
            while let Some(x) = queue.pop() {
                seen += 1;
                for &s in &fwd[x.index()] {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        queue.push(s);
                    }
                }
            }
            seen == n
        };

        LoopForest {
            loops,
            innermost,
            reducible,
        }
    }

    /// All loops.
    pub fn loops(&self) -> impl Iterator<Item = (LoopId, &NaturalLoop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId(i as u32), l))
    }

    /// Number of loops.
    pub fn num_loops(&self) -> usize {
        self.loops.len()
    }

    /// A loop by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &NaturalLoop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }

    /// Whether the whole CFG is reducible (every cycle is entered through
    /// its dominating header).
    pub fn is_reducible(&self) -> bool {
        self.reducible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    fn forest(text: &str) -> LoopForest {
        let f = parse_function(text).expect("parses");
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        LoopForest::new(&cfg, &dom)
    }

    #[test]
    fn single_loop() {
        let lf = forest(
            "func l\nA:\n LI r1=0\nB:\n AI r1=r1,1\n C cr0=r1,r2\n BT B,cr0,0x1/lt\nC:\n RET\n",
        );
        assert_eq!(lf.num_loops(), 1);
        let (_, l) = lf.loops().next().unwrap();
        assert_eq!(l.header, BlockId::new(1));
        assert_eq!(l.latches, vec![BlockId::new(1)]);
        assert_eq!(l.blocks, vec![BlockId::new(1)]);
        assert!(lf.is_reducible());
        assert!(lf.innermost(BlockId::new(1)).is_some());
        assert!(lf.innermost(BlockId::new(0)).is_none());
    }

    #[test]
    fn nested_loops() {
        // outer: B..D with latch D; inner: C with self latch.
        let lf = forest(
            "func n\n\
             A:\n LI r1=0\n\
             B:\n AI r1=r1,1\n\
             C:\n AI r2=r2,1\n C cr0=r2,r9\n BT C,cr0,0x1/lt\n\
             D:\n C cr1=r1,r9\n BT B,cr1,0x1/lt\n\
             E:\n RET\n",
        );
        assert_eq!(lf.num_loops(), 2);
        let inner = lf.innermost(BlockId::new(2)).expect("C is in a loop");
        let outer = lf.innermost(BlockId::new(1)).expect("B is in a loop");
        assert_ne!(inner, outer);
        assert_eq!(lf.get(inner).parent, Some(outer));
        assert_eq!(lf.get(outer).children, vec![inner]);
        assert_eq!(lf.get(inner).depth, 1);
        assert_eq!(lf.get(outer).depth, 0);
        assert_eq!(
            lf.get(outer).blocks,
            vec![BlockId::new(1), BlockId::new(2), BlockId::new(3)]
        );
    }

    #[test]
    fn two_latches_one_header() {
        // B has two back edges: from C and from D.
        let lf = forest(
            "func t\n\
             A:\n LI r1=0\n\
             B:\n C cr0=r1,r2\n BT D,cr0,0x1/lt\n\
             C:\n C cr1=r1,r3\n BT B,cr1,0x2/gt\n\
             Cx:\n B E\n\
             D:\n C cr2=r1,r4\n BT B,cr2,0x2/gt\n\
             E:\n RET\n",
        );
        assert_eq!(lf.num_loops(), 1);
        let (_, l) = lf.loops().next().unwrap();
        assert_eq!(l.header, BlockId::new(1));
        assert_eq!(l.latches.len(), 2);
        assert!(lf.is_reducible());
    }

    #[test]
    fn irreducible_graph_detected() {
        // Two blocks jumping into each other with two entries.
        let lf = forest(
            "func i\n\
             A:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\n\
             B:\n C cr1=r1,r3\n BT C,cr1,0x2/gt\n\
             Bx:\n B E\n\
             C:\n C cr2=r1,r4\n BT B,cr2,0x2/gt\n\
             Cx:\n B E\n\
             E:\n RET\n",
        );
        assert!(!lf.is_reducible(), "B<->C cycle has two entries");
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let lf = forest("func a\nA:\n LI r1=1\nB:\n RET\n");
        assert_eq!(lf.num_loops(), 0);
        assert!(lf.is_reducible());
    }
}
