//! Dominator and postdominator trees (Definitions 1 and 2 of the paper).
//!
//! Implemented with the Cooper–Harvey–Kennedy iterative algorithm over
//! reverse postorder, plus Euler-interval numbering of the resulting tree
//! so that `dominates` queries are O(1).

use crate::graph::{reverse_postorder_from, Cfg, NodeId};

/// A dominator tree over the nodes of a graph.
///
/// The same structure serves as a *post*dominator tree when built over the
/// reversed graph rooted at `EXIT` ([`DomTree::postdominators`]).
#[derive(Debug, Clone)]
pub struct DomTree {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    /// Euler tour entry/exit times on the dominator tree.
    pre: Vec<u32>,
    post: Vec<u32>,
    reachable: Vec<bool>,
}

impl DomTree {
    /// Dominators of `cfg`, rooted at `ENTRY`.
    pub fn dominators(cfg: &Cfg) -> Self {
        let succs: Vec<Vec<NodeId>> = cfg
            .nodes()
            .map(|n| cfg.succs(n).iter().map(|e| e.to).collect())
            .collect();
        Self::from_succs(&succs, NodeId::ENTRY)
    }

    /// Postdominators of `cfg`: dominators of the reversed graph rooted at
    /// `EXIT`.
    pub fn postdominators(cfg: &Cfg) -> Self {
        let succs: Vec<Vec<NodeId>> = cfg
            .nodes()
            .map(|n| cfg.preds(n).iter().map(|e| e.to).collect())
            .collect();
        Self::from_succs(&succs, NodeId::EXIT)
    }

    /// Builds the dominator tree of an arbitrary graph given as successor
    /// lists indexed by [`NodeId::index`], rooted at `root`.
    pub fn from_succs(succs: &[Vec<NodeId>], root: NodeId) -> Self {
        let n = succs.len();
        let rpo = reverse_postorder_from(n, root, |x| succs[x.index()].clone());
        let mut rpo_index = vec![usize::MAX; n];
        for (i, node) in rpo.iter().enumerate() {
            rpo_index[node.index()] = i;
        }
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (from, ss) in succs.iter().enumerate() {
            for &to in ss {
                preds[to.index()].push(NodeId::from_index(from));
            }
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[root.index()] = Some(root);

        let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        // Children lists (root excluded from its own children).
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in idom.iter().enumerate() {
            if let Some(p) = p {
                if p.index() != i {
                    children[p.index()].push(NodeId::from_index(i));
                }
            }
        }

        // Euler intervals for O(1) ancestor queries.
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        pre[root.index()] = clock;
        clock += 1;
        while let Some(&(node, i)) = stack.last() {
            if i < children[node.index()].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let c = children[node.index()][i];
                pre[c.index()] = clock;
                clock += 1;
                stack.push((c, 0));
            } else {
                post[node.index()] = clock;
                clock += 1;
                stack.pop();
            }
        }

        let reachable = idom.iter().map(Option::is_some).collect();
        DomTree {
            root,
            idom,
            children,
            pre,
            post,
            reachable,
        }
    }

    /// The tree's root (`ENTRY` for dominators, `EXIT` for postdominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate dominator of `n` (`None` for the root and for nodes
    /// unreachable from the root).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        match self.idom[n.index()] {
            Some(p) if p != n => Some(p),
            _ => None,
        }
    }

    /// Whether `n` is reachable from the root.
    pub fn is_reachable(&self, n: NodeId) -> bool {
        self.reachable[n.index()]
    }

    /// Whether `a` dominates `b` (reflexively). Unreachable nodes dominate
    /// only themselves.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        self.pre[a.index()] < self.pre[b.index()] && self.post[b.index()] < self.post[a.index()]
    }

    /// Whether `a` dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The children of `n` in the dominator tree.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::{parse_function, BlockId};

    fn node(i: u32) -> NodeId {
        NodeId::block(BlockId::new(i))
    }

    /// A(0) -> B(1)/C(2) -> D(3); B -> D, C -> D.
    fn diamond_cfg() -> Cfg {
        let f = parse_function(
            "func d\nA:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\nB:\n LI r3=5\n B D\nC:\n LI r3=3\nD:\n RET\n",
        )
        .expect("parses");
        Cfg::new(&f)
    }

    #[test]
    fn diamond_dominators() {
        let dom = DomTree::dominators(&diamond_cfg());
        assert_eq!(dom.idom(node(0)), Some(NodeId::ENTRY));
        assert_eq!(dom.idom(node(1)), Some(node(0)));
        assert_eq!(dom.idom(node(2)), Some(node(0)));
        assert_eq!(
            dom.idom(node(3)),
            Some(node(0)),
            "join is dominated by the fork only"
        );
        assert!(dom.dominates(node(0), node(3)));
        assert!(!dom.dominates(node(1), node(3)));
        assert!(dom.dominates(node(3), node(3)), "dominance is reflexive");
        assert!(!dom.strictly_dominates(node(3), node(3)));
    }

    #[test]
    fn diamond_postdominators() {
        let pdom = DomTree::postdominators(&diamond_cfg());
        assert_eq!(pdom.root(), NodeId::EXIT);
        assert_eq!(
            pdom.idom(node(0)),
            Some(node(3)),
            "the join postdominates the fork"
        );
        assert!(pdom.dominates(node(3), node(0)));
        assert!(!pdom.dominates(node(1), node(0)));
    }

    #[test]
    fn loop_dominators() {
        // A -> B; B -> B (latch) or C.
        let f = parse_function(
            "func l\nA:\n LI r1=0\nB:\n AI r1=r1,1\n C cr0=r1,r2\n BT B,cr0,0x1/lt\nC:\n RET\n",
        )
        .expect("parses");
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(node(1)), Some(node(0)));
        assert_eq!(dom.idom(node(2)), Some(node(1)));
        assert!(dom.dominates(node(1), node(2)));
    }

    #[test]
    fn unreachable_nodes() {
        // B is unreachable (A jumps straight to C).
        let f = parse_function("func u\nA:\n B C\nB:\n LI r1=1\nC:\n RET\n").expect("parses");
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        assert!(!dom.is_reachable(node(1)));
        assert_eq!(dom.idom(node(1)), None);
        assert!(!dom.dominates(node(0), node(1)));
        assert!(dom.dominates(node(1), node(1)));
    }

    #[test]
    fn children_partition_the_tree() {
        let dom = DomTree::dominators(&diamond_cfg());
        let kids = dom.children(node(0));
        assert_eq!(kids.len(), 3, "B, C, D are all children of A: {kids:?}");
    }
}
