//! Control-flow analyses for `gis-ir` functions.
//!
//! This crate supplies everything §4.1/§5.1 of the paper assume from the
//! surrounding compiler:
//!
//! * the control flow graph augmented with unique `ENTRY`/`EXIT` nodes
//!   ([`Cfg`], paper Figure 3);
//! * dominators and postdominators ([`DomTree`]) — Definitions 1 and 2;
//! * back edges, natural loops, the loop nesting forest and a
//!   reducibility check ([`LoopForest`]);
//! * the *region* structure: a region is either a loop body or the routine
//!   body without its enclosed loops, and enclosed loops appear as opaque
//!   supernodes ([`RegionTree`], [`RegionGraph`]);
//! * the *forward* (acyclic, back-edge-free) control flow graph of each
//!   region with labelled branch edges, which is what the control
//!   dependence computation in `gis-pdg` consumes.
//!
//! # Example
//!
//! ```
//! use gis_cfg::{Cfg, DomTree, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = gis_ir::parse_function(
//!     "func t\nA:\n BT C,cr0,0x1/lt\nB:\n B D\nC:\nD:\n RET\n",
//! )?;
//! let cfg = Cfg::new(&f);
//! let dom = DomTree::dominators(&cfg);
//! let a = NodeId::block(gis_ir::BlockId::new(0));
//! let d = NodeId::block(gis_ir::BlockId::new(3));
//! assert!(dom.dominates(a, d));
//! # Ok(())
//! # }
//! ```

mod dom;
mod dot;
mod graph;
mod loops;
mod region;

pub use dom::DomTree;
pub use dot::{cfg_to_dot, cfg_to_dot_with, dot_escape, dot_node_id, DotOverlay, NoOverlay};
pub use graph::{Cfg, Edge, EdgeLabel, NodeId};
pub use loops::{LoopForest, LoopId, NaturalLoop};
pub use region::{
    IrreducibleRegionError, Region, RegionGraph, RegionId, RegionKind, RegionNode, RegionTree,
};
