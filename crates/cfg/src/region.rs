//! Regions and their forward (acyclic) control flow graphs.
//!
//! In the paper's terminology (§5.1) a *region* is either a strongly
//! connected component corresponding to a loop, or the body of a routine
//! without its enclosed loops. Instructions never move out of or into a
//! region, and enclosed loops are opaque to the enclosing region's
//! scheduling — here they appear as supernodes of the enclosing region's
//! graph.
//!
//! For each region we expose its *forward* control flow graph: the
//! region's own back edges are removed (following [CHH89], the paper
//! computes control dependences on this back-edge-free graph only), so the
//! result is acyclic and has synthetic `ENTRY`/`EXIT` nodes. This graph is
//! exactly what the CSPDG construction in `gis-pdg` and the global
//! scheduler consume.

use crate::dom::DomTree;
use crate::graph::{Cfg, EdgeLabel, NodeId};
use crate::loops::{LoopForest, LoopId};
use gis_ir::BlockId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifies a region within a [`RegionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A loop body (has at least one back edge).
    Loop(LoopId),
    /// The routine body without the enclosed loops (no back edges at all).
    Body,
}

/// A region of the region tree.
#[derive(Debug, Clone)]
pub struct Region {
    /// Loop or routine body.
    pub kind: RegionKind,
    /// Blocks directly in this region (not inside any child region); sorted.
    pub blocks: Vec<BlockId>,
    /// Directly enclosed regions.
    pub children: Vec<RegionId>,
    /// The directly enclosing region (`None` for the routine body).
    pub parent: Option<RegionId>,
    /// The loop header for loop regions.
    pub header: Option<BlockId>,
    /// 0 for innermost regions; parents are one more than their highest
    /// child. The paper schedules heights 0 and 1 only ("two inner levels").
    pub height: usize,
}

impl Region {
    /// Total number of blocks, including those of nested regions.
    pub fn total_blocks(&self, tree: &RegionTree) -> usize {
        self.blocks.len()
            + self
                .children
                .iter()
                .map(|c| tree.region(*c).total_blocks(tree))
                .sum::<usize>()
    }
}

/// The tree of regions of a function: one region per natural loop plus the
/// routine body at the root.
#[derive(Debug, Clone)]
pub struct RegionTree {
    regions: Vec<Region>,
    root: RegionId,
    /// Innermost region of each block.
    region_of: Vec<RegionId>,
}

impl RegionTree {
    /// Builds the region tree from the loop forest.
    pub fn new(cfg: &Cfg, loops: &LoopForest) -> Self {
        let n_loops = loops.num_loops();
        let root = RegionId(n_loops as u32);
        let mut regions: Vec<Region> = loops
            .loops()
            .map(|(id, l)| Region {
                kind: RegionKind::Loop(id),
                blocks: Vec::new(),
                children: l
                    .children
                    .iter()
                    .map(|c| RegionId(c.index() as u32))
                    .collect(),
                parent: Some(l.parent.map_or(root, |p| RegionId(p.index() as u32))),
                header: Some(l.header),
                height: 0,
            })
            .collect();
        regions.push(Region {
            kind: RegionKind::Body,
            blocks: Vec::new(),
            children: loops
                .loops()
                .filter(|(_, l)| l.parent.is_none())
                .map(|(id, _)| RegionId(id.index() as u32))
                .collect(),
            parent: None,
            header: None,
            height: 0,
        });

        // Assign each block to its innermost region.
        let mut region_of = vec![root; cfg.num_blocks()];
        for (i, slot) in region_of.iter_mut().enumerate() {
            let b = BlockId::new(i as u32);
            let r = loops
                .innermost(b)
                .map_or(root, |l| RegionId(l.index() as u32));
            *slot = r;
            regions[r.index()].blocks.push(b);
        }
        for r in &mut regions {
            r.blocks.sort();
        }

        // Heights bottom-up (children always have smaller indices than the
        // root, but loop indices are arbitrary; iterate to fixpoint —
        // region trees are tiny).
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..regions.len() {
                let h = regions[i]
                    .children
                    .iter()
                    .map(|c| regions[c.index()].height + 1)
                    .max()
                    .unwrap_or(0);
                if regions[i].height != h {
                    regions[i].height = h;
                    changed = true;
                }
            }
        }

        RegionTree {
            regions,
            root,
            region_of,
        }
    }

    /// The root (routine body) region.
    pub fn root(&self) -> RegionId {
        self.root
    }

    /// A region by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u32), r))
    }

    /// The innermost region containing `b`.
    pub fn innermost(&self, b: BlockId) -> RegionId {
        self.region_of[b.index()]
    }

    /// Whether `b` lies anywhere inside `r` (directly or in a nested
    /// region).
    pub fn contains(&self, r: RegionId, b: BlockId) -> bool {
        let mut cur = Some(self.innermost(b));
        while let Some(c) = cur {
            if c == r {
                return true;
            }
            cur = self.regions[c.index()].parent;
        }
        false
    }

    /// Regions in scheduling order: innermost first (ascending height),
    /// ties by id.
    pub fn schedule_order(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = (0..self.regions.len() as u32).map(RegionId).collect();
        ids.sort_by_key(|r| (self.regions[r.index()].height, r.index()));
        ids
    }
}

/// A node of a [`RegionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionNode {
    /// Synthetic region entry.
    Entry,
    /// Synthetic region exit.
    Exit,
    /// A block directly in the region.
    Block(BlockId),
    /// An enclosed (child) region, opaque to scheduling.
    Inner(RegionId),
}

impl fmt::Display for RegionNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionNode::Entry => write!(f, "ENTRY"),
            RegionNode::Exit => write!(f, "EXIT"),
            RegionNode::Block(b) => write!(f, "{b}"),
            RegionNode::Inner(r) => write!(f, "[{r}]"),
        }
    }
}

/// The region's own graph was cyclic after removing its back edges —
/// i.e. the region is irreducible. The paper only schedules reducible
/// regions; callers skip regions that produce this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrreducibleRegionError {
    /// The offending region.
    pub region: RegionId,
}

impl fmt::Display for IrreducibleRegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region {} is irreducible (cyclic after back-edge removal)",
            self.region
        )
    }
}

impl Error for IrreducibleRegionError {}

/// The forward (acyclic) control flow graph of one region.
///
/// Node 0 is `ENTRY`, node 1 is `EXIT`; the remaining nodes are the
/// region's direct blocks followed by supernodes for its child regions.
/// All of the region's own back edges are removed, so the graph is acyclic
/// and a topological order exists.
#[derive(Debug, Clone)]
pub struct RegionGraph {
    region: RegionId,
    nodes: Vec<RegionNode>,
    succs: Vec<Vec<(NodeId, EdgeLabel)>>,
    preds: Vec<Vec<(NodeId, EdgeLabel)>>,
    node_of_block: HashMap<BlockId, NodeId>,
    topo: Vec<NodeId>,
}

impl RegionGraph {
    /// Builds the forward graph of region `rid`.
    ///
    /// # Errors
    ///
    /// Returns [`IrreducibleRegionError`] when the graph is cyclic after
    /// removing the region's back edges.
    pub fn new(
        cfg: &Cfg,
        tree: &RegionTree,
        rid: RegionId,
    ) -> Result<Self, IrreducibleRegionError> {
        let region = tree.region(rid);

        // Node table: ENTRY, EXIT, direct blocks, child supernodes.
        let mut nodes = vec![RegionNode::Entry, RegionNode::Exit];
        let mut node_of_block: HashMap<BlockId, NodeId> = HashMap::new();
        for &b in &region.blocks {
            node_of_block.insert(b, NodeId::from_index(nodes.len()));
            nodes.push(RegionNode::Block(b));
        }
        let mut node_of_child: HashMap<RegionId, NodeId> = HashMap::new();
        for &c in &region.children {
            node_of_child.insert(c, NodeId::from_index(nodes.len()));
            nodes.push(RegionNode::Inner(c));
        }

        // Maps any function block to a node of this graph, or EXIT when it
        // lies outside the region.
        let map_block = |b: BlockId| -> NodeId {
            if let Some(&n) = node_of_block.get(&b) {
                return n;
            }
            // Walk up from b's innermost region to a direct child of rid.
            let mut cur = tree.innermost(b);
            loop {
                if let Some(&n) = node_of_child.get(&cur) {
                    return n;
                }
                match tree.region(cur).parent {
                    Some(p) if cur != rid => cur = p,
                    _ => return NodeId::EXIT,
                }
            }
        };
        let header = region.header;
        // An edge to this region's header from inside the region is one of
        // the region's own back edges: dropped from the forward graph.
        let is_back_edge = |to: BlockId| Some(to) == header;

        let mut succs: Vec<Vec<(NodeId, EdgeLabel)>> = vec![Vec::new(); nodes.len()];
        let add = |succs: &mut Vec<Vec<(NodeId, EdgeLabel)>>,
                   from: NodeId,
                   to: NodeId,
                   label: EdgeLabel| {
            let list = &mut succs[from.index()];
            if !list.iter().any(|(t, _)| *t == to) {
                list.push((to, label));
            }
        };

        // Edges from direct blocks.
        for &b in &region.blocks {
            let from = node_of_block[&b];
            for e in cfg.succs(NodeId::block(b)) {
                match e.to.as_block() {
                    Some(t) if is_back_edge(t) => continue,
                    Some(t) => {
                        let to = if tree.contains(rid, t) {
                            map_block(t)
                        } else {
                            NodeId::EXIT
                        };
                        add(&mut succs, from, to, e.label);
                    }
                    None => add(&mut succs, from, NodeId::EXIT, e.label),
                }
            }
        }

        // Edges leaving child regions (from any block inside the child to a
        // target outside it) attach to the supernode. Each distinct target
        // is a distinct *exit* of the supernode and gets its own label —
        // the supernode acts as a multi-way branch whose outcome is
        // decided inside it.
        for &c in &region.children {
            let from = node_of_child[&c];
            let mut exits = 0u32;
            let mut stack = vec![c];
            while let Some(r) = stack.pop() {
                let reg = tree.region(r);
                stack.extend(reg.children.iter().copied());
                for &b in &reg.blocks {
                    for e in cfg.succs(NodeId::block(b)) {
                        let to = match e.to.as_block() {
                            Some(t) if tree.contains(c, t) => continue, // internal
                            Some(t) if is_back_edge(t) => continue,
                            Some(t) if tree.contains(rid, t) => map_block(t),
                            _ => NodeId::EXIT,
                        };
                        if !succs[from.index()].iter().any(|&(t, _)| t == to) {
                            add(&mut succs, from, to, EdgeLabel::Exit(exits));
                            exits += 1;
                        }
                    }
                }
            }
        }

        // Region entry: the loop header (possibly a supernode for the root
        // body whose entry block sits inside a loop), or the function entry.
        let entry_target = match header {
            Some(h) => node_of_block[&h],
            None => map_block(BlockId::new(0)),
        };
        add(&mut succs, NodeId::ENTRY, entry_target, EdgeLabel::Always);

        // Nodes left without successors (e.g. a latch whose only edge was
        // the removed back edge) flow to EXIT: the end of the iteration.
        for s in succs.iter_mut().skip(2) {
            if s.is_empty() {
                s.push((NodeId::EXIT, EdgeLabel::Always));
            }
        }

        // Predecessors.
        let mut preds: Vec<Vec<(NodeId, EdgeLabel)>> = vec![Vec::new(); nodes.len()];
        for (i, list) in succs.iter().enumerate() {
            for &(to, label) in list {
                preds[to.index()].push((NodeId::from_index(i), label));
            }
        }

        // Topological order (Kahn; ties by node index, which follows block
        // layout order). Cyclic graphs are irreducible regions.
        let n = nodes.len();
        let mut indeg = vec![0usize; n];
        for list in &succs {
            for &(to, _) in list {
                indeg[to.index()] += 1;
            }
        }
        let mut topo = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while !ready.is_empty() {
            ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest index
            let i = ready.pop().expect("nonempty");
            topo.push(NodeId::from_index(i));
            for &(to, _) in &succs[i] {
                indeg[to.index()] -= 1;
                if indeg[to.index()] == 0 {
                    ready.push(to.index());
                }
            }
        }
        if topo.len() != n {
            return Err(IrreducibleRegionError { region: rid });
        }

        Ok(RegionGraph {
            region: rid,
            nodes,
            succs,
            preds,
            node_of_block,
            topo,
        })
    }

    /// The region this graph describes.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of nodes (including `ENTRY` and `EXIT`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// What a node is.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node(&self, n: NodeId) -> RegionNode {
        self.nodes[n.index()]
    }

    /// The node for a block directly in this region.
    pub fn node_of_block(&self, b: BlockId) -> Option<NodeId> {
        self.node_of_block.get(&b).copied()
    }

    /// Labelled successor edges.
    pub fn succs(&self, n: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.succs[n.index()]
    }

    /// Labelled predecessor edges (`.0` is the predecessor).
    pub fn preds(&self, n: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.preds[n.index()]
    }

    /// A topological order of all nodes (`ENTRY` first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Successor lists without labels, for the dominator machinery.
    pub fn succ_lists(&self) -> Vec<Vec<NodeId>> {
        self.succs
            .iter()
            .map(|list| list.iter().map(|&(t, _)| t).collect())
            .collect()
    }

    /// Dominators of this graph (rooted at region `ENTRY`).
    pub fn dominators(&self) -> DomTree {
        DomTree::from_succs(&self.succ_lists(), NodeId::ENTRY)
    }

    /// Postdominators of this graph (rooted at region `EXIT`).
    pub fn postdominators(&self) -> DomTree {
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes()];
        for (i, list) in self.succs.iter().enumerate() {
            for &(to, _) in list {
                rev[to.index()].push(NodeId::from_index(i));
            }
        }
        DomTree::from_succs(&rev, NodeId::EXIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    fn analyses(text: &str) -> (Cfg, RegionTree) {
        let f = parse_function(text).expect("parses");
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let loops = LoopForest::new(&cfg, &dom);
        let tree = RegionTree::new(&cfg, &loops);
        (cfg, tree)
    }

    const NESTED: &str = "func n\n\
        A:\n LI r1=0\n\
        B:\n AI r1=r1,1\n\
        C:\n AI r2=r2,1\n C cr0=r2,r9\n BT C,cr0,0x1/lt\n\
        D:\n C cr1=r1,r9\n BT B,cr1,0x1/lt\n\
        E:\n RET\n";

    #[test]
    fn region_tree_shape() {
        let (_, tree) = analyses(NESTED);
        // Two loop regions plus the body.
        assert_eq!(tree.regions().count(), 3);
        let root = tree.root();
        assert_eq!(tree.region(root).kind, RegionKind::Body);
        assert_eq!(tree.region(root).height, 2);
        // Body directly owns A and E.
        assert_eq!(
            tree.region(root).blocks,
            vec![BlockId::new(0), BlockId::new(4)]
        );
        // Scheduling order: innermost loop, outer loop, body.
        let order = tree.schedule_order();
        let heights: Vec<usize> = order.iter().map(|r| tree.region(*r).height).collect();
        assert_eq!(heights, vec![0, 1, 2]);
        assert_eq!(tree.region(root).total_blocks(&tree), 5);
    }

    #[test]
    fn innermost_and_contains() {
        let (_, tree) = analyses(NESTED);
        let c = BlockId::new(2);
        let inner = tree.innermost(c);
        assert!(matches!(tree.region(inner).kind, RegionKind::Loop(_)));
        assert_eq!(tree.region(inner).header, Some(c));
        assert!(tree.contains(inner, c));
        assert!(tree.contains(tree.root(), c));
        let outer = tree.region(inner).parent.expect("nested");
        assert!(tree.contains(outer, c));
        assert!(!tree.contains(inner, BlockId::new(0)));
    }

    #[test]
    fn outer_loop_graph_has_inner_supernode() {
        let (cfg, tree) = analyses(NESTED);
        let b = BlockId::new(1);
        let outer = tree.innermost(b);
        let g = RegionGraph::new(&cfg, &tree, outer).expect("reducible");
        // Nodes: ENTRY, EXIT, B, D, [inner].
        assert_eq!(g.num_nodes(), 5);
        let bn = g.node_of_block(b).expect("B is direct");
        assert!(
            g.node_of_block(BlockId::new(2)).is_none(),
            "C is inside the supernode"
        );
        // B -> supernode -> D -> EXIT (back edge D->B removed).
        let b_succs = g.succs(bn);
        assert_eq!(b_succs.len(), 1);
        assert!(matches!(g.node(b_succs[0].0), RegionNode::Inner(_)));
        let sup = b_succs[0].0;
        let sup_succs = g.succs(sup);
        assert_eq!(sup_succs.len(), 1);
        assert_eq!(g.node(sup_succs[0].0), RegionNode::Block(BlockId::new(3)));
        let d_succs = g.succs(g.node_of_block(BlockId::new(3)).unwrap());
        assert_eq!(d_succs, &[(NodeId::EXIT, EdgeLabel::NotTaken)]);
        // Topological order visits ENTRY first and EXIT last.
        let topo = g.topo_order();
        assert_eq!(topo.first().map(|n| g.node(*n)), Some(RegionNode::Entry));
        assert_eq!(topo.last().map(|n| g.node(*n)), Some(RegionNode::Exit));
    }

    #[test]
    fn inner_loop_graph_latch_flows_to_exit() {
        let (cfg, tree) = analyses(NESTED);
        let inner = tree.innermost(BlockId::new(2));
        let g = RegionGraph::new(&cfg, &tree, inner).expect("reducible");
        // Single block C: ENTRY -> C -> EXIT (back edge removed; the loop
        // exit fall-through to D leaves the region).
        assert_eq!(g.num_nodes(), 3);
        let c = g.node_of_block(BlockId::new(2)).unwrap();
        assert_eq!(g.succs(c), &[(NodeId::EXIT, EdgeLabel::NotTaken)]);
    }

    #[test]
    fn body_graph_of_loopless_function() {
        let (cfg, tree) = analyses("func s\nA:\n LI r1=1\nB:\n RET\n");
        let g = RegionGraph::new(&cfg, &tree, tree.root()).expect("reducible");
        assert_eq!(g.num_nodes(), 4);
        let a = g.node_of_block(BlockId::new(0)).unwrap();
        let b = g.node_of_block(BlockId::new(1)).unwrap();
        assert_eq!(g.succs(a), &[(b, EdgeLabel::Always)]);
        assert_eq!(g.succs(b), &[(NodeId::EXIT, EdgeLabel::Always)]);
        let dom = g.dominators();
        assert!(dom.dominates(a, b));
        let pdom = g.postdominators();
        assert!(pdom.dominates(b, a));
    }
}
