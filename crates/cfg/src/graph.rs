//! The control flow graph with `ENTRY`/`EXIT` augmentation.

use gis_ir::{BlockId, Function, Op};
use std::fmt;

/// A node of a [`Cfg`] (or of a region's forward graph): the synthetic
/// `ENTRY`, the synthetic `EXIT`, or a basic block.
///
/// Nodes are dense indices: `ENTRY` is 0, `EXIT` is 1, block `i` is `i+2`,
/// so analyses can use plain vectors as node-indexed tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The synthetic entry node.
    pub const ENTRY: NodeId = NodeId(0);
    /// The synthetic exit node.
    pub const EXIT: NodeId = NodeId(1);

    /// The node for a basic block.
    pub fn block(b: BlockId) -> NodeId {
        NodeId(b.index() as u32 + 2)
    }

    /// Constructs a node from its raw dense index.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The basic block this node stands for, unless it is `ENTRY`/`EXIT`.
    pub fn as_block(self) -> Option<BlockId> {
        if self.0 >= 2 {
            Some(BlockId::new(self.0 - 2))
        } else {
            None
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_block() {
            Some(b) => write!(f, "{b}"),
            None if *self == NodeId::ENTRY => write!(f, "ENTRY"),
            None => write!(f, "EXIT"),
        }
    }
}

/// The condition under which a control flow edge is taken.
///
/// Labels are what turn the bare flow graph of Figure 3 into the annotated
/// edges the control dependence computation needs ("B executes when the
/// condition at the end of A is TRUE").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeLabel {
    /// The block ends in a conditional branch and the branch is taken.
    Taken,
    /// The block ends in a conditional branch and control falls through.
    NotTaken,
    /// Unconditional control transfer (fall-through, `B`, or synthetic).
    Always,
    /// The `k`-th distinct exit of a multi-exit supernode (an enclosed
    /// region): which exit fires is decided *inside* the supernode, so
    /// each target needs its own condition label — otherwise two targets
    /// of the same supernode would look "identically control dependent"
    /// without being equivalent.
    Exit(u32),
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeLabel::Taken => f.write_str("T"),
            EdgeLabel::NotTaken => f.write_str("F"),
            EdgeLabel::Always => Ok(()),
            EdgeLabel::Exit(k) => write!(f, "x{k}"),
        }
    }
}

/// A labelled directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// Condition label.
    pub label: EdgeLabel,
}

/// The control flow graph of a function, augmented with unique `ENTRY` and
/// `EXIT` nodes (paper Figure 3). `ENTRY` has a single edge to the entry
/// block; every block that leaves the function feeds `EXIT`.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<Edge>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.num_blocks() + 2;
        let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut add = |from: NodeId, to: NodeId, label: EdgeLabel| {
            succs[from.index()].push(Edge { to, label });
            preds[to.index()].push(Edge { to: from, label });
        };

        add(NodeId::ENTRY, NodeId::block(f.entry()), EdgeLabel::Always);

        for (bid, block) in f.blocks() {
            let node = NodeId::block(bid);
            let last = block.last().map(|i| &i.op);
            match last {
                Some(Op::BranchCond { target, .. }) => {
                    add(node, NodeId::block(*target), EdgeLabel::Taken);
                    let next = bid.index() + 1;
                    if next < f.num_blocks() {
                        let ft = BlockId::new(next as u32);
                        if ft != *target {
                            add(node, NodeId::block(ft), EdgeLabel::NotTaken);
                        }
                    } else {
                        add(node, NodeId::EXIT, EdgeLabel::NotTaken);
                    }
                }
                Some(Op::Branch { target }) => {
                    add(node, NodeId::block(*target), EdgeLabel::Always);
                }
                Some(Op::Ret) => add(node, NodeId::EXIT, EdgeLabel::Always),
                _ => {
                    // Plain fall-through (verify guarantees this is not the
                    // last block).
                    let next = bid.index() + 1;
                    if next < f.num_blocks() {
                        add(
                            node,
                            NodeId::block(BlockId::new(next as u32)),
                            EdgeLabel::Always,
                        );
                    } else {
                        add(node, NodeId::EXIT, EdgeLabel::Always);
                    }
                }
            }
        }
        Cfg { succs, preds }
    }

    /// Number of nodes including `ENTRY` and `EXIT`.
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_nodes() - 2
    }

    /// Successor edges of a node.
    pub fn succs(&self, n: NodeId) -> &[Edge] {
        &self.succs[n.index()]
    }

    /// Predecessor edges of a node (`Edge::to` is the predecessor).
    pub fn preds(&self, n: NodeId) -> &[Edge] {
        &self.preds[n.index()]
    }

    /// All nodes in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Predecessor *blocks* of `b`, with the pseudo `ENTRY` node filtered
    /// out. Convenience for dataflow over blocks only (verifiers,
    /// per-block analyses) where the augmented graph is noise.
    pub fn block_preds(&self, b: BlockId) -> Vec<BlockId> {
        self.preds(NodeId::block(b))
            .iter()
            .filter_map(|e| e.to.as_block())
            .collect()
    }

    /// Successor *blocks* of `b`, with the pseudo `EXIT` node filtered out.
    pub fn block_succs(&self, b: BlockId) -> Vec<BlockId> {
        self.succs(NodeId::block(b))
            .iter()
            .filter_map(|e| e.to.as_block())
            .collect()
    }

    /// Whether `to` is reachable from `from` along control flow edges.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for e in self.succs(n) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to);
                }
            }
        }
        false
    }

    /// Reverse postorder starting at `ENTRY`.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        reverse_postorder_from(self.num_nodes(), NodeId::ENTRY, |n| {
            self.succs(n).iter().map(|e| e.to).collect()
        })
    }
}

/// Reverse postorder of an arbitrary graph given by a successor closure.
pub(crate) fn reverse_postorder_from(
    num_nodes: usize,
    start: NodeId,
    succs: impl Fn(NodeId) -> Vec<NodeId>,
) -> Vec<NodeId> {
    let mut visited = vec![false; num_nodes];
    let mut post = Vec::with_capacity(num_nodes);
    // Iterative DFS with an explicit stack of (node, next-child-index).
    let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
    visited[start.index()] = true;
    while let Some(&(n, i)) = stack.last() {
        let children = succs(n);
        if i < children.len() {
            stack.last_mut().expect("nonempty").1 += 1;
            let c = children[i];
            if !visited[c.index()] {
                visited[c.index()] = true;
                stack.push((c, 0));
            }
        } else {
            post.push(n);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    /// The diamond of §5.3: A branches to C or falls into B; both join D.
    pub(crate) fn diamond() -> Function {
        parse_function(
            "func diamond\n\
             A:\n  C cr0=r1,r2\n  BT C,cr0,0x1/lt\n\
             B:\n  LI r3=5\n  B D\n\
             C:\n  LI r3=3\n\
             D:\n  PRINT r3\n  RET\n",
        )
        .expect("parses")
    }

    fn node(i: u32) -> NodeId {
        NodeId::block(BlockId::new(i))
    }

    #[test]
    fn entry_and_exit_wiring() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(
            cfg.succs(NodeId::ENTRY),
            &[Edge {
                to: node(0),
                label: EdgeLabel::Always
            }]
        );
        // A -> C (taken), A -> B (fall-through).
        let a_succs = cfg.succs(node(0));
        assert_eq!(a_succs.len(), 2);
        assert_eq!(
            a_succs[0],
            Edge {
                to: node(2),
                label: EdgeLabel::Taken
            }
        );
        assert_eq!(
            a_succs[1],
            Edge {
                to: node(1),
                label: EdgeLabel::NotTaken
            }
        );
        // D -> EXIT.
        assert_eq!(
            cfg.succs(node(3)),
            &[Edge {
                to: NodeId::EXIT,
                label: EdgeLabel::Always
            }]
        );
        // Preds of D are B and C.
        let d_preds: Vec<NodeId> = cfg.preds(node(3)).iter().map(|e| e.to).collect();
        assert_eq!(d_preds, vec![node(1), node(2)]);
    }

    #[test]
    fn reachability() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert!(cfg.reachable(node(0), NodeId::EXIT));
        assert!(cfg.reachable(node(1), node(3)));
        assert!(!cfg.reachable(node(1), node(2)), "siblings of the diamond");
        assert!(!cfg.reachable(node(3), node(0)), "no back edges here");
    }

    #[test]
    fn reverse_postorder_starts_at_entry_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.first(), Some(&NodeId::ENTRY));
        assert_eq!(rpo.last(), Some(&NodeId::EXIT));
        assert_eq!(rpo.len(), cfg.num_nodes());
        // A precedes B and C, which precede D.
        let pos = |n: NodeId| rpo.iter().position(|x| *x == n).unwrap();
        assert!(pos(node(0)) < pos(node(1)));
        assert!(pos(node(0)) < pos(node(2)));
        assert!(pos(node(1)) < pos(node(3)));
        assert!(pos(node(2)) < pos(node(3)));
    }

    #[test]
    fn block_preds_and_succs_filter_pseudo_nodes() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        // Entry block: ENTRY pred is filtered out.
        assert!(cfg.block_preds(BlockId::new(0)).is_empty());
        assert_eq!(
            cfg.block_preds(BlockId::new(3)),
            vec![BlockId::new(1), BlockId::new(2)]
        );
        // Last block: EXIT succ is filtered out.
        assert!(cfg.block_succs(BlockId::new(3)).is_empty());
        assert_eq!(cfg.block_succs(BlockId::new(1)), vec![BlockId::new(3)]);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::ENTRY.to_string(), "ENTRY");
        assert_eq!(NodeId::EXIT.to_string(), "EXIT");
        assert_eq!(node(0).to_string(), "BL0");
    }
}
