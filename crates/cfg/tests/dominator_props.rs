//! Properties of the dominator machinery, checked against brute force on
//! random control flow graphs.
//!
//! Oracle: `a` dominates `b` iff removing `a` disconnects `b` from the
//! entry (for `a != b`); postdominance is the dual with the exit.

use gis_cfg::{Cfg, DomTree, LoopForest, NodeId};
use gis_ir::{parse_function, BlockId, Function};
use gis_workloads::rng::XorShift64Star;

/// A random function: `n` blocks; each non-final block optionally ends
/// with a conditional branch to an arbitrary block (possibly backwards).
fn arb_cfg_function(r: &mut XorShift64Star) -> Function {
    let n = 2 + r.below(8);
    let mut text = String::from("func random\n");
    for i in 0..n - 1 {
        text.push_str(&format!("B{i}:\n"));
        if r.chance(1, 2) {
            let target = r.below(n);
            text.push_str(&format!("    BT B{target},cr0,0x1/lt\n"));
        }
    }
    text.push_str(&format!("B{}:\n    RET\n", n - 1));
    parse_function(&text).expect("well formed")
}

/// Runs `check` on 128 random CFGs (the replacement for the previous
/// proptest harness; seeds are stable so failures reproduce exactly).
fn for_random_cfgs(check: impl Fn(&Function)) {
    for seed in 0..128u64 {
        check(&arb_cfg_function(&mut XorShift64Star::new(seed)));
    }
}

/// Brute-force dominance: `a` dominates `b` iff every entry→b path passes
/// through `a` — i.e. `b` is unreachable from the entry when `a`'s edges
/// are erased.
fn dominates_brute(cfg: &Cfg, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    // Reachability from ENTRY avoiding `a`.
    let mut seen = vec![false; cfg.num_nodes()];
    let mut stack = vec![NodeId::ENTRY];
    if NodeId::ENTRY == a {
        return cfg.reachable(NodeId::ENTRY, b);
    }
    seen[NodeId::ENTRY.index()] = true;
    while let Some(x) = stack.pop() {
        for e in cfg.succs(x) {
            if e.to == a || seen[e.to.index()] {
                continue;
            }
            seen[e.to.index()] = true;
            stack.push(e.to);
        }
    }
    cfg.reachable(NodeId::ENTRY, b) && !seen[b.index()]
}

fn postdominates_brute(cfg: &Cfg, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    if NodeId::EXIT == a {
        return cfg.reachable(b, NodeId::EXIT);
    }
    // Can b reach EXIT avoiding a?
    let mut seen = vec![false; cfg.num_nodes()];
    let mut stack = vec![b];
    seen[b.index()] = true;
    let mut escapes = false;
    while let Some(x) = stack.pop() {
        if x == NodeId::EXIT {
            escapes = true;
            break;
        }
        for e in cfg.succs(x) {
            if e.to == a || seen[e.to.index()] {
                continue;
            }
            seen[e.to.index()] = true;
            stack.push(e.to);
        }
    }
    cfg.reachable(b, NodeId::EXIT) && !escapes
}

#[test]
fn dominators_match_brute_force() {
    for_random_cfgs(|f| {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        for a in cfg.nodes() {
            for b in cfg.nodes() {
                // Brute force is only meaningful for entry-reachable b.
                if !cfg.reachable(NodeId::ENTRY, b) || !cfg.reachable(NodeId::ENTRY, a) {
                    continue;
                }
                assert_eq!(
                    dom.dominates(a, b),
                    dominates_brute(&cfg, a, b),
                    "dominates({a}, {b})\n{f}"
                );
            }
        }
    });
}

#[test]
fn postdominators_match_brute_force() {
    for_random_cfgs(|f| {
        let cfg = Cfg::new(f);
        let pdom = DomTree::postdominators(&cfg);
        for a in cfg.nodes() {
            for b in cfg.nodes() {
                if !cfg.reachable(b, NodeId::EXIT) || !cfg.reachable(a, NodeId::EXIT) {
                    continue;
                }
                assert_eq!(
                    pdom.dominates(a, b),
                    postdominates_brute(&cfg, a, b),
                    "postdominates({a}, {b})\n{f}"
                );
            }
        }
    });
}

#[test]
fn idom_is_the_closest_strict_dominator() {
    for_random_cfgs(|f| {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        for n in cfg.nodes() {
            if !dom.is_reachable(n) || n == NodeId::ENTRY {
                continue;
            }
            let idom = dom.idom(n).expect("reachable non-root has an idom");
            assert!(dom.strictly_dominates(idom, n));
            // Every other strict dominator of n dominates idom(n).
            for d in cfg.nodes() {
                if d != n && d != idom && dom.strictly_dominates(d, n) {
                    assert!(
                        dom.dominates(d, idom),
                        "{d} strictly dominates {n} but not its idom {idom}"
                    );
                }
            }
        }
    });
}

#[test]
fn dominance_is_antisymmetric_and_transitive() {
    for_random_cfgs(|f| {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        let nodes: Vec<NodeId> = cfg.nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                if a != b && dom.dominates(a, b) {
                    assert!(!dom.dominates(b, a), "antisymmetry: {a} vs {b}");
                }
                for &c in &nodes {
                    if dom.dominates(a, b) && dom.dominates(b, c) {
                        assert!(dom.dominates(a, c), "transitivity {a} {b} {c}");
                    }
                }
            }
        }
    });
}

#[test]
fn natural_loop_headers_dominate_their_bodies() {
    for_random_cfgs(|f| {
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        let loops = LoopForest::new(&cfg, &dom);
        for (_, l) in loops.loops() {
            for &b in &l.blocks {
                assert!(
                    dom.dominates(NodeId::block(l.header), NodeId::block(b)),
                    "header BL{} does not dominate member BL{}",
                    l.header.index(),
                    b.index()
                );
            }
            for &latch in &l.latches {
                assert!(l.contains(latch), "latches live inside the loop");
            }
        }
    });
}

#[test]
fn brute_force_oracle_sanity() {
    // The diamond: A dominates everything; neither arm dominates the join.
    let f =
        parse_function("func d\nA:\n BT C,cr0,0x1/lt\nB:\n B D\nC:\nD:\n RET\n").expect("parses");
    let cfg = Cfg::new(&f);
    let n = |i: u32| NodeId::block(BlockId::new(i));
    assert!(dominates_brute(&cfg, n(0), n(3)));
    assert!(!dominates_brute(&cfg, n(1), n(3)));
    assert!(postdominates_brute(&cfg, n(3), n(0)));
    assert!(!postdominates_brute(&cfg, n(1), n(0)));
}
