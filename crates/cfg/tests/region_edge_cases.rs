//! Region machinery edge cases: returns inside loops, multiple exits,
//! three-deep nesting, grandchild lifting, and irreducible regions.

use gis_cfg::{Cfg, DomTree, LoopForest, NodeId, RegionGraph, RegionKind, RegionNode, RegionTree};
use gis_ir::{parse_function, BlockId};

fn analyses(text: &str) -> (Cfg, RegionTree) {
    let f = parse_function(text).expect("parses");
    let cfg = Cfg::new(&f);
    let dom = DomTree::dominators(&cfg);
    let loops = LoopForest::new(&cfg, &dom);
    let tree = RegionTree::new(&cfg, &loops);
    (cfg, tree)
}

#[test]
fn loop_with_a_return_inside() {
    // The loop can exit via RET (B) as well as via the bottom test.
    let (cfg, tree) = analyses(
        "func r\n\
         init:\n LI r1=0\n\
         H:\n AI r1=r1,1\n C cr0=r1,r9\n BT X,cr0,0x4/eq\n\
         B:\n RET\n\
         X:\n C cr1=r1,r8\n BT H,cr1,0x1/lt\n\
         out:\n PRINT r1\n RET\n",
    );
    let rid = tree.innermost(BlockId::new(1));
    assert!(matches!(tree.region(rid).kind, RegionKind::Loop(_)));
    // B ends in RET and cannot reach the latch, so it is *not* part of
    // the natural loop — it belongs to the enclosing body region.
    assert_eq!(tree.innermost(BlockId::new(2)), tree.root());
    assert_eq!(
        tree.region(rid).blocks,
        vec![BlockId::new(1), BlockId::new(3)]
    );

    let g = RegionGraph::new(&cfg, &tree, rid).expect("reducible");
    // H's fall-through leaves the region (towards B): edge to EXIT, plus
    // the in-loop edge to X.
    let h = g.node_of_block(BlockId::new(1)).expect("header");
    let x = g.node_of_block(BlockId::new(3)).expect("latch");
    let h_targets: Vec<NodeId> = g.succs(h).iter().map(|&(t, _)| t).collect();
    assert!(h_targets.contains(&x) && h_targets.contains(&NodeId::EXIT));
    // The latch exits via fall-through after back-edge removal.
    assert!(g.succs(x).iter().all(|&(t, _)| t == NodeId::EXIT));
    // Postdominators still root at EXIT and cover every node.
    let pdom = g.postdominators();
    assert!(pdom.dominates(NodeId::EXIT, h));
}

#[test]
fn three_deep_nesting_heights_and_order() {
    let (_, tree) = analyses(
        "func n3\n\
         A:\n LI r1=0\n\
         B:\n LI r2=0\n\
         C:\n LI r3=0\n\
         D:\n AI r3=r3,1\n C cr0=r3,r9\n BT D,cr0,0x1/lt\n\
         E:\n AI r2=r2,1\n C cr1=r2,r9\n BT C,cr1,0x1/lt\n\
         F:\n AI r1=r1,1\n C cr2=r1,r9\n BT B,cr2,0x1/lt\n\
         G:\n RET\n",
    );
    let heights: Vec<usize> = tree
        .schedule_order()
        .iter()
        .map(|&r| tree.region(r).height)
        .collect();
    assert_eq!(heights, vec![0, 1, 2, 3], "innermost first, body last");
    assert_eq!(tree.region(tree.root()).kind, RegionKind::Body);
    // D's innermost loop nests inside E's inside F's.
    let d = tree.innermost(BlockId::new(3));
    let c = tree.innermost(BlockId::new(2));
    let b = tree.innermost(BlockId::new(1));
    assert_eq!(tree.region(d).parent, Some(c));
    assert_eq!(tree.region(c).parent, Some(b));
    assert!(tree.contains(b, BlockId::new(3)), "grandchild containment");
}

#[test]
fn grandchild_blocks_lift_to_the_direct_child_supernode() {
    let (cfg, tree) = analyses(
        "func g\n\
         A:\n LI r1=0\n\
         B:\n LI r2=0\n\
         C:\n AI r2=r2,1\n C cr0=r2,r9\n BT C,cr0,0x1/lt\n\
         D:\n AI r1=r1,1\n C cr1=r1,r9\n BT B,cr1,0x1/lt\n\
         E:\n RET\n",
    );
    // The body region sees one supernode for the outer loop; the inner
    // loop's block C is inside that same supernode (not its own node).
    let g = RegionGraph::new(&cfg, &tree, tree.root()).expect("reducible");
    let supers: Vec<NodeId> = (0..g.num_nodes())
        .map(NodeId::from_index)
        .filter(|&n| matches!(g.node(n), RegionNode::Inner(_)))
        .collect();
    assert_eq!(supers.len(), 1, "exactly one direct child of the body");
    assert!(
        g.node_of_block(BlockId::new(1)).is_none(),
        "B is inside the supernode"
    );
    assert!(
        g.node_of_block(BlockId::new(2)).is_none(),
        "C (grandchild) too"
    );
    // A -> supernode -> E.
    let a = g.node_of_block(BlockId::new(0)).unwrap();
    assert_eq!(g.succs(a)[0].0, supers[0]);
    let e = g.node_of_block(BlockId::new(4)).unwrap();
    assert!(g.succs(supers[0]).iter().any(|&(t, _)| t == e));
}

#[test]
fn irreducible_body_region_is_an_error() {
    // Two-entry cycle between B and C.
    let (cfg, tree) = analyses(
        "func i\n\
         A:\n C cr0=r1,r2\n BT C,cr0,0x1/lt\n\
         B:\n C cr1=r1,r3\n BT C,cr1,0x2/gt\n\
         Bx:\n B E\n\
         C:\n C cr2=r1,r4\n BT B,cr2,0x2/gt\n\
         Cx:\n B E\n\
         E:\n RET\n",
    );
    let err = RegionGraph::new(&cfg, &tree, tree.root()).unwrap_err();
    assert_eq!(err.region, tree.root());
    assert!(err.to_string().contains("irreducible"));
}

#[test]
fn multiple_loop_exits_reach_region_exit() {
    let (cfg, tree) = analyses(
        "func m\n\
         init:\n LI r1=0\n\
         H:\n AI r1=r1,1\n C cr0=r1,r8\n BT done,cr0,0x4/eq\n\
         M:\n C cr1=r1,r7\n BT done,cr1,0x2/gt\n\
         L:\n C cr2=r1,r9\n BT H,cr2,0x1/lt\n\
         done:\n PRINT r1\n RET\n",
    );
    let rid = tree.innermost(BlockId::new(1));
    let g = RegionGraph::new(&cfg, &tree, rid).expect("reducible");
    // All three loop blocks have an edge to EXIT (two early exits plus the
    // latch fall-through).
    for b in 1..=3 {
        let n = g.node_of_block(BlockId::new(b)).expect("in loop");
        assert!(
            g.succs(n).iter().any(|&(t, _)| t == NodeId::EXIT),
            "BL{b} exits the region"
        );
    }
    // The topological order still covers every node exactly once.
    assert_eq!(g.topo_order().len(), g.num_nodes());
}
