//! End-to-end tests: a real daemon on a real socket, driven by the
//! protocol client.

use gis_ir::hash::fnv64_str;
use gis_serve::{start, Client, FuncOutcome, FuncSpec, Lang, Listen, ServeConfig, Server};
use gis_workloads::loadgen;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn unique_socket(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gis-serve-test-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

fn start_unix(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> (Server, Listen) {
    let listen = Listen::Unix(unique_socket(tag));
    let mut config = ServeConfig::new(listen.clone());
    config.jobs = 2;
    configure(&mut config);
    let server = start(config).expect("daemon starts");
    (server, listen)
}

fn tinyc_specs(items: &[loadgen::CorpusItem]) -> Vec<FuncSpec> {
    items
        .iter()
        .map(|i| FuncSpec {
            name: Some(i.name.clone()),
            text: i.source.clone(),
        })
        .collect()
}

fn ok_hashes(results: &[gis_serve::client::FuncResult]) -> Vec<(bool, u64)> {
    results
        .iter()
        .map(|r| match &r.outcome {
            FuncOutcome::Ok { cached, hash, .. } => (*cached, *hash),
            other => panic!("function {} did not schedule: {other:?}", r.name),
        })
        .collect()
}

#[test]
fn warm_batch_hits_the_cache_with_identical_hashes() {
    let (server, listen) = start_unix("warm", |_| {});
    let corpus = loadgen::corpus(4, 4, 4, 2, 42);
    let specs = tinyc_specs(&corpus);

    let mut client = Client::connect(&listen).expect("connects");
    client.ping().expect("ping");

    let cold = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &specs)
        .expect("cold batch");
    assert_eq!(cold.summary.ok, 4);
    assert_eq!(cold.summary.cache_hits, 0);
    assert_eq!(cold.summary.cache_misses, 4);
    let cold_hashes = ok_hashes(&cold.funcs);
    assert!(cold_hashes.iter().all(|(cached, _)| !cached));

    let warm = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &specs)
        .expect("warm batch");
    assert_eq!(warm.summary.cache_hits, 4, "everything repeats");
    let warm_hashes = ok_hashes(&warm.funcs);
    assert!(warm_hashes.iter().all(|(cached, _)| *cached));
    assert_eq!(
        cold_hashes.iter().map(|(_, h)| h).collect::<Vec<_>>(),
        warm_hashes.iter().map(|(_, h)| h).collect::<Vec<_>>(),
        "warm hits return bit-identical schedules"
    );

    // Results stream in input order.
    let indices: Vec<usize> = warm.funcs.iter().map(|r| r.index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3]);

    let stats = client.stats().expect("stats");
    let counter = |name: &str| {
        stats
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("cache.hits"), 4);
    assert_eq!(counter("cache.misses"), 4);
    assert_eq!(counter("serve.batches"), 2);

    client.shutdown_server().expect("shutdown ack");
    let metrics = server.join();
    assert_eq!(metrics.counter("cache.hits"), 4);
    let Listen::Unix(path) = &listen else {
        unreachable!()
    };
    assert!(!path.exists(), "socket file unlinked on shutdown");
}

#[test]
fn cached_schedule_matches_a_fresh_in_process_compile() {
    let (server, listen) = start_unix("correct", |_| {});
    let source = loadgen::corpus(1, 1, 5, 3, 7).remove(0).source;

    // The reference: compile the same function locally, no daemon.
    let mut reference = gis_tinyc::compile_program(&source)
        .expect("frontend")
        .function;
    gis_core::compile(
        &mut reference,
        &gis_machine::MachineDescription::rs6k(),
        &gis_core::SchedConfig::speculative(),
    )
    .expect("schedules");
    let reference_hash = fnv64_str(&reference.to_string());

    let mut client = Client::connect(&listen).expect("connects");
    let spec = vec![FuncSpec {
        name: None,
        text: source,
    }];
    for pass in ["cold", "warm"] {
        let batch = client
            .schedule_batch(Lang::TinyC, "rs6k", vec![], &spec)
            .expect(pass);
        let FuncOutcome::Ok { hash, schedule, .. } = &batch.funcs[0].outcome else {
            panic!("{pass} pass failed: {:?}", batch.funcs[0].outcome);
        };
        assert_eq!(*hash, reference_hash, "{pass} hash matches local compile");
        assert_eq!(fnv64_str(schedule), reference_hash, "{pass} text matches");
    }

    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn tcp_listener_speaks_the_same_protocol() {
    let listen = Listen::Tcp("127.0.0.1:0".to_owned());
    let mut config = ServeConfig::new(listen);
    config.jobs = 1;
    let server = start(config).expect("daemon starts");
    let addr = server.tcp_addr().expect("bound tcp address");
    let listen = Listen::Tcp(addr.to_string());

    let mut client = Client::connect(&listen).expect("connects");
    // Textual IR straight in, no front end.
    let batch = client
        .schedule_batch(
            Lang::Asm,
            "wide2",
            vec![],
            &[FuncSpec {
                name: None,
                text: "func t\nentry:\n    LI r0=1\n    LI r1=2\n    A r2=r0,r1\n    RET\n"
                    .to_owned(),
            }],
        )
        .expect("asm batch");
    assert_eq!(batch.summary.ok, 1);
    let FuncOutcome::Ok { schedule, .. } = &batch.funcs[0].outcome else {
        panic!("asm function failed: {:?}", batch.funcs[0].outcome);
    };
    assert!(schedule.contains("func t"));

    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    let (server, listen) = start_unix("malformed", |_| {});
    let mut client = Client::connect(&listen).expect("connects");

    for bad in [
        "this is not json",
        "[1,2,3]",
        r#"{"id":9}"#,
        r#"{"req":"frobnicate","id":9}"#,
        r#"{"req":"schedule","id":9,"funcs":[]}"#,
        r#"{"req":"schedule","id":9,"machine":"pdp11","funcs":[{"text":"int x;"}]}"#,
        r#"{"req":"schedule","id":9,"config":{"preset":"turbo"},"funcs":[{"text":"int x;"}]}"#,
    ] {
        let response = client.round_trip_raw(bad).expect("server answers");
        assert!(
            response.contains("\"resp\":\"error\""),
            "{bad} => {response}"
        );
    }

    // Front-end failures are per-function, not protocol errors.
    let batch = client
        .schedule_batch(
            Lang::TinyC,
            "rs6k",
            vec![],
            &[FuncSpec {
                name: Some("broken".to_owned()),
                text: "void f( {".to_owned(),
            }],
        )
        .expect("batch completes");
    assert_eq!(batch.summary.errors, 1);
    assert!(matches!(batch.funcs[0].outcome, FuncOutcome::Error { .. }));

    // After all that abuse the connection still schedules real work.
    client.ping().expect("still alive");
    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn oversized_requests_are_discarded_not_fatal() {
    let (server, listen) = start_unix("oversized", |c| c.max_line_bytes = 1024);
    let mut client = Client::connect(&listen).expect("connects");

    let huge = format!(
        r#"{{"req":"schedule","id":1,"funcs":[{{"text":"{}"}}]}}"#,
        "x".repeat(8192)
    );
    let response = client.round_trip_raw(&huge).expect("server answers");
    assert!(response.contains("exceeds 1024 bytes"), "{response}");

    client
        .ping()
        .expect("connection survives an oversized line");
    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn mid_stream_disconnect_leaves_the_daemon_serving() {
    let (server, listen) = start_unix("disconnect", |_| {});
    let corpus = loadgen::corpus(3, 3, 6, 3, 9);

    {
        // A rude client: submit a batch, read half a response, vanish.
        let Listen::Unix(path) = &listen else {
            unreachable!()
        };
        let mut stream = std::os::unix::net::UnixStream::connect(path).expect("connects");
        let specs = tinyc_specs(&corpus);
        let funcs: Vec<String> = specs
            .iter()
            .map(|f| format!(r#"{{"text":{}}}"#, gis_trace::Json::Str(f.text.clone())))
            .collect();
        let request = format!(
            r#"{{"req":"schedule","id":1,"funcs":[{}]}}"#,
            funcs.join(",")
        );
        stream.write_all(request.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        let mut reader = BufReader::new(&stream);
        let mut first = String::new();
        reader.read_line(&mut first).expect("first response line");
        assert!(first.contains("\"resp\":"));
        // Drop: the stream closes with schedule lines still unsent.
    }

    // The daemon must still serve new clients.
    let mut client = Client::connect(&listen).expect("second client connects");
    client.ping().expect("daemon alive after rude disconnect");
    let batch = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &tinyc_specs(&corpus[..1]))
        .expect("still schedules");
    assert_eq!(batch.summary.ok, 1);

    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn deadline_turns_unfinished_functions_into_timeouts() {
    // One worker, a 1 ms deadline, and a queue of mid-sized functions:
    // the later ones cannot possibly finish in time. (Sizes are kept
    // moderate — the workers drain the queue even after the deadline,
    // and shutdown waits for them.)
    let (server, listen) = start_unix("timeout", |c| {
        c.jobs = 1;
        c.timeout_ms = 1;
    });
    let corpus = loadgen::corpus(4, 4, 24, 3, 3);
    let mut client = Client::connect(&listen).expect("connects");
    let batch = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &tinyc_specs(&corpus))
        .expect("batch completes despite timeouts");
    assert_eq!(batch.funcs.len(), 4, "every function gets a response");
    let timeouts = batch
        .funcs
        .iter()
        .filter(|r| matches!(r.outcome, FuncOutcome::Timeout))
        .count();
    assert!(
        timeouts > 0,
        "a 1ms deadline must expire: {:?}",
        batch.summary
    );
    assert_eq!(batch.summary.errors, timeouts as u64);

    // The connection survives a timed-out batch.
    client.ping().expect("alive");
    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn bounded_cache_evicts_and_counts() {
    let (server, listen) = start_unix("evict", |c| c.cache_cap = 1);
    let corpus = loadgen::corpus(2, 2, 3, 1, 5);
    let specs = tinyc_specs(&corpus);
    let mut client = Client::connect(&listen).expect("connects");

    // A and B thrash a 1-entry cache; repeats of the pair never hit.
    for _ in 0..2 {
        client
            .schedule_batch(Lang::TinyC, "rs6k", vec![], &specs)
            .expect("batch");
    }
    let stats = client.stats().expect("stats");
    let counter = |name: &str| {
        stats
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("cache.capacity"), 1);
    assert_eq!(counter("cache.entries"), 1);
    assert!(counter("cache.evictions") >= 2, "thrashing evicts");

    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn cache_persists_across_restarts() {
    let cache_file = std::env::temp_dir().join(format!(
        "gis-serve-test-persist-{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_file);
    let corpus = loadgen::corpus(3, 3, 4, 2, 17);
    let specs = tinyc_specs(&corpus);

    // First daemon: cold compiles, then dumps its cache on drain.
    let (server, listen) = start_unix("persist1", |c| c.cache_file = Some(cache_file.clone()));
    let mut client = Client::connect(&listen).expect("connects");
    let cold = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &specs)
        .expect("cold batch");
    assert_eq!(cold.summary.cache_misses, 3);
    let cold_hashes = ok_hashes(&cold.funcs);
    client.shutdown_server().expect("shutdown");
    let metrics = server.join();
    assert_eq!(metrics.counter("cache.persist.saved"), 3);
    assert!(cache_file.exists(), "image written on drain");

    // Second daemon: reloads the image and serves the batch warm.
    let (server, listen) = start_unix("persist2", |c| c.cache_file = Some(cache_file.clone()));
    let mut client = Client::connect(&listen).expect("connects");
    let warm = client
        .schedule_batch(Lang::TinyC, "rs6k", vec![], &specs)
        .expect("warm batch");
    assert_eq!(warm.summary.cache_hits, 3, "restored entries hit");
    let warm_hashes = ok_hashes(&warm.funcs);
    assert!(warm_hashes.iter().all(|&(cached, _)| cached));
    assert_eq!(
        warm_hashes.iter().map(|(_, h)| h).collect::<Vec<_>>(),
        cold_hashes.iter().map(|(_, h)| h).collect::<Vec<_>>(),
        "bit-identical"
    );
    let stats = client.stats().expect("stats");
    let loaded = stats
        .iter()
        .find(|(k, _)| k == "cache.persist.loaded")
        .map(|&(_, v)| v);
    assert_eq!(loaded, Some(3));
    client.shutdown_server().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&cache_file);
}

#[test]
fn stale_cache_images_are_rejected_cleanly() {
    let cache_file =
        std::env::temp_dir().join(format!("gis-serve-test-stale-{}.cache", std::process::id()));
    // A version far beyond anything this build speaks.
    let mut image = Vec::new();
    image.extend_from_slice(b"GISC");
    image.extend_from_slice(&999u32.to_le_bytes());
    image.extend_from_slice(&0u64.to_le_bytes());
    std::fs::write(&cache_file, &image).expect("writes stale image");

    let (server, listen) = start_unix("stale", |c| c.cache_file = Some(cache_file.clone()));
    let mut client = Client::connect(&listen).expect("daemon starts despite the image");
    client.ping().expect("serves");
    let stats = client.stats().expect("stats");
    let counter = |name: &str| {
        stats
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("cache.persist.rejected"), 1);
    assert_eq!(counter("cache.entries"), 0, "nothing imported");
    client.shutdown_server().expect("shutdown");
    server.join();
    // The drain overwrites the stale image with a current-version one.
    let rewritten = std::fs::read(&cache_file).expect("image rewritten");
    assert_eq!(&rewritten[4..8], &1u32.to_le_bytes(), "current version");
    let _ = std::fs::remove_file(&cache_file);
}

/// Editing one function of a warm batch invalidates only its changed
/// regions: the whole-function cache misses for the edited function, but
/// the in-process region memo re-serves its untouched loops.
#[test]
fn editing_one_function_warm_hits_unchanged_regions() {
    let (server, listen) = start_unix("region-warm", |_| {});
    let before = "int a[8];\nvoid f() {\n  int i = 0; int acc = 0;\n\
                  \x20 while (i < 9) { acc = acc + a[i & 7] * 3; i = i + 1; }\n\
                  \x20 int j = 0;\n\
                  \x20 while (j < 9) { acc = acc + a[j & 7] * 5; j = j + 1; }\n\
                  \x20 print(acc);\n}\n";
    // Same shape, one constant changed in the second loop: the first
    // loop's blocks keep identical ids and content, so its region keys
    // are unchanged.
    let after = before.replace("* 5", "* 7");
    assert_ne!(before, after);
    let other = "int b[4];\nvoid g() {\n  int k = 0; int s = 0;\n\
                 \x20 while (k < 5) { s = s + b[k & 3]; k = k + 1; }\n\
                 \x20 print(s);\n}\n";
    let spec = |text: &str, name: &str| FuncSpec {
        name: Some(name.to_owned()),
        text: text.to_owned(),
    };

    let mut client = Client::connect(&listen).expect("connects");
    let counter_of = |stats: &[(String, u64)], name: &str| {
        stats
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    client
        .schedule_batch(
            Lang::TinyC,
            "rs6k",
            vec![],
            &[spec(before, "f"), spec(other, "g")],
        )
        .expect("cold batch");
    let stats = client.stats().expect("stats");
    let hits_before = counter_of(&stats, "cache.region.hit");

    let edited = client
        .schedule_batch(
            Lang::TinyC,
            "rs6k",
            vec![],
            &[spec(&after, "f"), spec(other, "g")],
        )
        .expect("edited batch");
    // The unchanged function hits the whole-function cache; the edited
    // one misses it but warm-hits its untouched region.
    assert_eq!(edited.summary.cache_hits, 1);
    assert_eq!(edited.summary.cache_misses, 1);
    let stats = client.stats().expect("stats");
    let hits_after = counter_of(&stats, "cache.region.hit");
    assert!(
        hits_after > hits_before,
        "edited function re-serves unchanged regions from the memo \
         ({hits_before} -> {hits_after})"
    );

    client.shutdown_server().expect("shutdown");
    server.join();
}

#[test]
fn request_shutdown_drains_without_a_client() {
    let (server, listen) = start_unix("drain", |_| {});
    let mut client = Client::connect(&listen).expect("connects");
    client.ping().expect("ping");
    drop(client);
    server.request_shutdown();
    assert!(server.shutdown_requested());
    let metrics = server.join();
    assert_eq!(metrics.counter("serve.requests"), 1);
}
