//! The scheduling daemon: listener, connection handling, worker pool.
//!
//! One thread runs a non-blocking accept loop; each accepted connection
//! gets its own handler thread with a short read timeout so it can poll
//! the shutdown flag while idle. Scheduling work fans out to a fixed
//! pool of `--jobs` worker threads shared by all connections, so one
//! client submitting a large batch saturates the machine and two clients
//! share it fairly (the pool's queue interleaves their functions).
//!
//! Shutdown is graceful: the flag (set by a client `shutdown` request,
//! [`Server::request_shutdown`], or a signal via
//! [`install_signal_handlers`]) stops the accept loop, idle connections
//! close on their next poll, in-flight batches run to completion, and
//! the unix socket file is unlinked before [`Server::join`] returns the
//! final metrics.

use crate::cache::{cache_key, CachedSchedule, ScheduleCache};
use crate::protocol::{
    batch_end_line, error_line, parse_request, pong_line, resolve_machine, schedule_line,
    shutdown_line, stats_line, BatchSummary, FuncOutcome, Lang, Request, ScheduleRequest,
};
use gis_core::{compile, effective_jobs, SchedConfig};
use gis_ir::hash::fnv64_str;
use gis_machine::MachineDescription;
use gis_trace::Metrics;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`HOST:PORT`; port 0 picks a free port).
    Tcp(String),
}

impl Listen {
    /// Parses a `--listen` spec: `unix:PATH` or `tcp:HOST:PORT`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(spec: &str) -> Result<Listen, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix listen spec has an empty path".to_owned());
            }
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err(format!("tcp listen spec '{addr}' has no port"));
            }
            Ok(Listen::Tcp(addr.to_owned()))
        } else {
            Err(format!("expected unix:PATH or tcp:HOST:PORT, got '{spec}'"))
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Worker threads for scheduling; `0` means one per available CPU.
    pub jobs: usize,
    /// Schedule cache capacity in entries; `0` disables caching.
    pub cache_cap: usize,
    /// Per-batch deadline in milliseconds; functions not finished by then
    /// are answered `timeout`. `0` disables the deadline.
    pub timeout_ms: u64,
    /// Longest accepted request line; longer lines are discarded and
    /// answered with an `error` response.
    pub max_line_bytes: usize,
    /// Persist the schedule cache here: reloaded on start (a missing
    /// file starts cold; a foreign or stale-version image is rejected
    /// and counted under `cache.persist.rejected`), written back after
    /// the drain completes. `None` keeps the cache in memory only.
    pub cache_file: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults: 0 jobs (per-CPU), 1024 cached schedules, no timeout,
    /// 4 MiB line limit, no cache persistence.
    pub fn new(listen: Listen) -> Self {
        ServeConfig {
            listen,
            jobs: 0,
            cache_cap: 1024,
            timeout_ms: 0,
            max_line_bytes: 4 << 20,
            cache_file: None,
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    cache: ScheduleCache,
    metrics: Mutex<Metrics>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    pool_tx: Mutex<Option<mpsc::Sender<Job>>>,
    timeout_ms: u64,
    max_line_bytes: usize,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal_pending()
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::request_shutdown`] then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: thread::JoinHandle<()>,
    tcp_addr: Option<SocketAddr>,
    cache_file: Option<PathBuf>,
}

impl Server {
    /// The bound TCP address (None for unix sockets) — lets tests bind
    /// port 0 and discover the real port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Asks the daemon to drain and exit.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by a client, a signal, or
    /// [`Server::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until the daemon has fully drained, then returns the final
    /// metrics (scheduler perf counters plus `cache.*`, `cache.region.*`
    /// and `serve.*`). When a cache file is configured, the drained
    /// cache is written back to it first (atomically: a sibling
    /// temporary renamed into place), so the next daemon starts warm.
    pub fn join(self) -> Metrics {
        let _ = self.accept_thread.join();
        let mut metrics = self
            .shared
            .metrics
            .lock()
            .map(|m| m.clone())
            .unwrap_or_default();
        if let Some(path) = &self.cache_file {
            let image = self.shared.cache.dump();
            let tmp = path.with_extension("tmp");
            let saved = std::fs::write(&tmp, &image)
                .and_then(|()| std::fs::rename(&tmp, path))
                .is_ok();
            if saved {
                metrics.record("cache.persist.saved", self.shared.cache.len() as u64);
            }
        }
        for (name, value) in self.shared.cache.counters() {
            metrics.record(name, value);
        }
        for (name, value) in region_memo_metrics() {
            metrics.record(name, value);
        }
        metrics
    }
}

/// The in-process region memo's counters under the `cache.region.`
/// prefix, next to the whole-function `cache.*` counters. The memo is
/// process-wide (it serves every worker thread), so these describe the
/// daemon's lifetime, not one batch.
fn region_memo_metrics() -> Vec<(&'static str, u64)> {
    let c = gis_core::region_memo_counters();
    vec![
        ("cache.region.hit", c.hits),
        ("cache.region.miss", c.misses),
        ("cache.region.splice", c.splices),
        ("cache.region.entries", c.entries),
        ("cache.region.capacity", c.capacity),
    ]
}

enum Acceptor {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// Starts the daemon.
///
/// # Errors
///
/// Returns the bind error when the socket path or TCP address is
/// unavailable.
pub fn start(config: ServeConfig) -> io::Result<Server> {
    let (acceptor, tcp_addr) = match &config.listen {
        Listen::Unix(path) => {
            let listener = UnixListener::bind(path)?;
            (Acceptor::Unix(listener, path.clone()), None)
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let local = listener.local_addr()?;
            (Acceptor::Tcp(listener), Some(local))
        }
    };

    let shared = Arc::new(Shared {
        cache: ScheduleCache::new(config.cache_cap),
        metrics: Mutex::new(Metrics::default()),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        pool_tx: Mutex::new(None),
        timeout_ms: config.timeout_ms,
        max_line_bytes: config.max_line_bytes,
    });

    // Warm start: restore the previous daemon's cache image if one was
    // left behind. A missing file is a normal cold start; an unreadable
    // or stale image is rejected (counted, never fatal) — the daemon
    // will overwrite it with a current-version image on drain.
    if let Some(path) = &config.cache_file {
        match std::fs::read(path) {
            Ok(image) => match shared.cache.load(&image) {
                Ok(loaded) => record(&shared, "cache.persist.loaded", loaded as u64),
                Err(_) => record(&shared, "cache.persist.rejected", 1),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => record(&shared, "cache.persist.rejected", 1),
        }
    }

    // Fixed worker pool shared by every connection.
    let workers = effective_jobs(config.jobs);
    let (tx, rx) = mpsc::channel::<Job>();
    *shared.pool_tx.lock().expect("pool lock") = Some(tx);
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<_> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            thread::spawn(move || loop {
                let job = rx.lock().expect("pool queue lock").recv();
                match job {
                    Ok(job) => job(),
                    Err(_) => break,
                }
            })
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::spawn(move || {
        accept_loop(&acceptor, &accept_shared);
        // Drain: wait for connection handlers, then retire the pool.
        while accept_shared.active_connections.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(5));
        }
        accept_shared.pool_tx.lock().expect("pool lock").take();
        for handle in worker_handles {
            let _ = handle.join();
        }
        if let Acceptor::Unix(_, path) = &acceptor {
            let _ = std::fs::remove_file(path);
        }
    });

    Ok(Server {
        shared,
        accept_thread,
        tcp_addr,
        cache_file: config.cache_file,
    })
}

fn accept_loop(acceptor: &Acceptor, shared: &Arc<Shared>) {
    match acceptor {
        Acceptor::Unix(l, _) => l.set_nonblocking(true).expect("nonblocking unix listener"),
        Acceptor::Tcp(l) => l.set_nonblocking(true).expect("nonblocking tcp listener"),
    }
    while !shared.shutting_down() {
        let accepted: io::Result<Box<dyn Conn>> = match acceptor {
            Acceptor::Unix(l, _) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        };
        match accepted {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The two stream types, unified for the connection handler.
trait Conn: Read + Write + Send {
    fn set_read_poll_interval(&self, interval: Duration) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_poll_interval(&self, interval: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(interval))
    }
}

impl Conn for UnixStream {
    fn set_read_poll_interval(&self, interval: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(interval))
    }
}

enum ReadLine {
    Line(String),
    Oversized,
    Closed,
}

/// Reads `\n`-terminated lines with a hard size cap, buffering any bytes
/// a pipelining client sends ahead of the next request.
struct LineReader {
    /// Bytes received but not yet consumed by a returned line.
    pending: Vec<u8>,
}

impl LineReader {
    fn new() -> Self {
        LineReader {
            pending: Vec::new(),
        }
    }

    /// Reads one line. Oversized lines are consumed to their terminating
    /// newline and reported, leaving the stream positioned at the next
    /// request. Returns [`ReadLine::Closed`] on EOF, on a mid-line
    /// disconnect, or when shutdown is requested while the connection is
    /// idle.
    fn read_line(&mut self, stream: &mut dyn Conn, shared: &Shared) -> ReadLine {
        let mut discarding = false;
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line = self.pending.split_off(pos + 1);
                std::mem::swap(&mut line, &mut self.pending);
                line.pop(); // trailing '\n'
                if line.len() > shared.max_line_bytes {
                    return ReadLine::Oversized;
                }
                return match String::from_utf8(line) {
                    Ok(s) => ReadLine::Line(s),
                    // Hand non-UTF-8 downstream as an empty line so the
                    // client gets a parse-error response, not a hangup.
                    Err(_) => ReadLine::Line(String::new()),
                };
            }
            if self.pending.len() > shared.max_line_bytes {
                discarding = true;
                self.pending.clear();
            }
            match stream.read(&mut chunk) {
                Ok(0) => return ReadLine::Closed,
                Ok(n) => {
                    if discarding {
                        // Keep only a possible newline position.
                        if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.pending.extend_from_slice(&chunk[pos + 1..n]);
                            return ReadLine::Oversized;
                        }
                    } else {
                        self.pending.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle poll: close only when quiescent — pending bytes
                    // mean the client is mid-send, so give it until the
                    // next poll even during shutdown.
                    if shared.shutting_down() && self.pending.is_empty() && !discarding {
                        return ReadLine::Closed;
                    }
                }
                Err(_) => return ReadLine::Closed,
            }
        }
    }
}

fn handle_connection(mut stream: Box<dyn Conn>, shared: &Arc<Shared>) {
    if stream
        .set_read_poll_interval(Duration::from_millis(50))
        .is_err()
    {
        return;
    }
    let mut reader = LineReader::new();
    loop {
        let line = match reader.read_line(stream.as_mut(), shared) {
            ReadLine::Closed => return,
            ReadLine::Oversized => {
                let msg = format!(
                    "request line exceeds {} bytes and was discarded",
                    shared.max_line_bytes
                );
                if write_line(stream.as_mut(), &error_line(&msg)).is_err() {
                    return;
                }
                continue;
            }
            ReadLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(r) => r,
            Err(message) => {
                if write_line(stream.as_mut(), &error_line(&message)).is_err() {
                    return;
                }
                continue;
            }
        };
        record(shared, "serve.requests", 1);
        let result = match request {
            Request::Ping { id } => write_line(stream.as_mut(), &pong_line(id)),
            Request::Stats { id } => {
                let counters = current_counters(shared);
                write_line(stream.as_mut(), &stats_line(id, &counters))
            }
            Request::Shutdown { id } => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = write_line(stream.as_mut(), &shutdown_line(id));
                return;
            }
            Request::Schedule(req) => handle_schedule(stream.as_mut(), shared, req),
        };
        if result.is_err() {
            return; // client went away mid-stream; the daemon lives on
        }
    }
}

fn write_line(stream: &mut dyn Conn, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn record(shared: &Shared, name: &str, by: u64) {
    if let Ok(mut m) = shared.metrics.lock() {
        m.record(name, by);
    }
}

fn current_counters(shared: &Shared) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = shared
        .metrics
        .lock()
        .map(|m| {
            m.counters()
                .map(|(k, v)| (k.to_owned(), v))
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    for (name, value) in shared.cache.counters() {
        out.push((name.to_owned(), value));
    }
    for (name, value) in region_memo_metrics() {
        out.push((name.to_owned(), value));
    }
    out.sort();
    out
}

fn handle_schedule(
    stream: &mut dyn Conn,
    shared: &Arc<Shared>,
    req: ScheduleRequest,
) -> io::Result<()> {
    let machine = match resolve_machine(&req.machine) {
        Ok(m) => Arc::new(m),
        Err(message) => return write_line(stream, &error_line(&message)),
    };
    let config = match req.config.resolve() {
        Ok(c) => Arc::new(c),
        Err(message) => return write_line(stream, &error_line(&message)),
    };
    let Some(pool) = shared.pool_tx.lock().expect("pool lock").clone() else {
        return write_line(stream, &error_line("daemon is shutting down"));
    };

    let started = Instant::now();
    let count = req.funcs.len();
    let fallback_names: Vec<String> = req
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| f.name.clone().unwrap_or_else(|| format!("func{i}")))
        .collect();

    let (results_tx, results_rx) = mpsc::channel::<(usize, String, FuncOutcome)>();
    for (index, func) in req.funcs.into_iter().enumerate() {
        let results_tx = results_tx.clone();
        let machine = Arc::clone(&machine);
        let config = Arc::clone(&config);
        let shared = Arc::clone(shared);
        let lang = req.lang;
        let job: Job = Box::new(move || {
            let (name, outcome) = schedule_one(&shared, lang, &func.text, &machine, &config);
            let name = func.name.unwrap_or(name);
            let _ = results_tx.send((index, name, outcome));
        });
        if pool.send(job).is_err() {
            break; // pool retired mid-shutdown; unfinished funcs time out below
        }
    }
    drop(results_tx);

    let deadline =
        (shared.timeout_ms > 0).then(|| started + Duration::from_millis(shared.timeout_ms));
    let mut results: Vec<Option<(String, FuncOutcome)>> = (0..count).map(|_| None).collect();
    let mut received = 0usize;
    let mut next_emit = 0usize;
    let mut summary = BatchSummary {
        count: count as u64,
        ..BatchSummary::default()
    };

    let emit_ready = |results: &mut Vec<Option<(String, FuncOutcome)>>,
                      next_emit: &mut usize,
                      summary: &mut BatchSummary,
                      stream: &mut dyn Conn|
     -> io::Result<()> {
        while *next_emit < count {
            let Some((name, outcome)) = results[*next_emit].take() else {
                break;
            };
            tally(summary, &outcome);
            write_line(stream, &schedule_line(req.id, *next_emit, &name, &outcome))?;
            *next_emit += 1;
        }
        Ok(())
    };

    while received < count {
        let next = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    break;
                }
                results_rx.recv_timeout(d - now)
            }
            None => results_rx
                .recv()
                .map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };
        match next {
            Ok((index, name, outcome)) => {
                results[index] = Some((name, outcome));
                received += 1;
                emit_ready(&mut results, &mut next_emit, &mut summary, stream)?;
            }
            Err(_) => break, // deadline hit, or pool retired under shutdown
        }
    }

    // Anything still pending missed the deadline (results that arrived
    // out of order past `next_emit` are still emitted as themselves).
    for index in next_emit..count {
        let (name, outcome) = results[index]
            .take()
            .unwrap_or_else(|| (fallback_names[index].clone(), FuncOutcome::Timeout));
        tally(&mut summary, &outcome);
        write_line(stream, &schedule_line(req.id, index, &name, &outcome))?;
    }

    summary.nanos = started.elapsed().as_nanos() as u64;
    record(shared, "serve.functions", count as u64);
    record(shared, "serve.batches", 1);
    write_line(stream, &batch_end_line(req.id, &summary))
}

fn tally(summary: &mut BatchSummary, outcome: &FuncOutcome) {
    match outcome {
        FuncOutcome::Ok { cached, .. } => {
            summary.ok += 1;
            if *cached {
                summary.cache_hits += 1;
            } else {
                summary.cache_misses += 1;
            }
        }
        FuncOutcome::Error { .. } | FuncOutcome::Timeout => summary.errors += 1,
    }
}

/// Schedules one function: front end, cache probe, compile on a miss.
fn schedule_one(
    shared: &Shared,
    lang: Lang,
    text: &str,
    machine: &MachineDescription,
    config: &SchedConfig,
) -> (String, FuncOutcome) {
    let started = Instant::now();
    let mut function = match lang {
        Lang::TinyC => match gis_tinyc::compile_program(text) {
            Ok(program) => program.function,
            Err(e) => {
                return (
                    "<frontend>".to_owned(),
                    FuncOutcome::Error {
                        message: format!("tiny-C front end: {e}"),
                    },
                )
            }
        },
        Lang::Asm => match gis_ir::parse_function(text) {
            Ok(f) => f,
            Err(e) => {
                return (
                    "<parse>".to_owned(),
                    FuncOutcome::Error {
                        message: format!("IR parse: {e}"),
                    },
                )
            }
        },
    };
    let name = function.name().to_owned();
    let key = cache_key(&function, machine, config);

    if let Some(hit) = shared.cache.get(key) {
        return (
            name,
            FuncOutcome::Ok {
                cached: true,
                hash: hit.hash,
                nanos: started.elapsed().as_nanos() as u64,
                moved_useful: hit.moved_useful,
                moved_speculative: hit.moved_speculative,
                schedule: hit.text.clone(),
            },
        );
    }

    match compile(&mut function, machine, config) {
        Ok(stats) => {
            let schedule = function.to_string();
            let hash = fnv64_str(&schedule);
            let nanos = started.elapsed().as_nanos() as u64;
            let entry = Arc::new(CachedSchedule {
                text: schedule.clone(),
                hash,
                moved_useful: stats.moved_useful as u64,
                moved_speculative: stats.moved_speculative as u64,
                nanos,
            });
            shared.cache.insert(key, entry);
            if let Ok(mut m) = shared.metrics.lock() {
                for (counter, value) in crate::perf_counters(&stats) {
                    m.record(counter, value);
                }
            }
            (
                name,
                FuncOutcome::Ok {
                    cached: false,
                    hash,
                    nanos,
                    moved_useful: stats.moved_useful as u64,
                    moved_speculative: stats.moved_speculative as u64,
                    schedule,
                },
            )
        }
        Err(e) => (
            name,
            FuncOutcome::Error {
                message: format!("scheduler: {e}"),
            },
        ),
    }
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing we do: one atomic store.
        SIGNALED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that flip a process-global flag the
/// accept loop polls, turning ctrl-c and `kill` into the same graceful
/// drain as a client `shutdown` request. No-op on non-unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sig::install();
}

/// Whether a shutdown signal has arrived since
/// [`install_signal_handlers`].
pub fn signal_pending() -> bool {
    #[cfg(unix)]
    {
        sig::SIGNALED.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock").expect("unix"),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:0").expect("tcp"),
            Listen::Tcp("127.0.0.1:0".to_owned())
        );
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("tcp:localhost").is_err());
        assert!(Listen::parse("/tmp/x.sock").is_err());
        assert!(Listen::parse("udp:1.2.3.4:5").is_err());
    }
}
