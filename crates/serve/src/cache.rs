//! The content-addressed schedule cache.
//!
//! Scheduling a region is pure: the scheduled text is a function of the
//! input IR (including its fresh-id allocator state), the machine
//! description, and the scheduling configuration — nothing else. So the
//! cache key is a content address: the FNV-64 of the function's
//! [canonical bytes](gis_ir::canon) chained with fingerprints of the
//! machine and the config (see [`cache_key`]). Repeated compiles of the
//! same function — the common case for a daemon serving a build farm's
//! hot functions — become a hash-map lookup instead of a full pipeline
//! run, the same block-cache idea JITs use to avoid re-translating
//! unchanged code.
//!
//! Eviction is least-recently-used over a bounded capacity: every access
//! bumps a monotonic stamp, and inserting past capacity evicts the entry
//! with the smallest stamp (a `BTreeMap` from stamp to key makes both
//! the bump and the eviction `O(log n)`). Hit, miss and eviction counts
//! are kept in atomics so the serving threads never contend on the
//! counters.

use gis_core::fingerprint::{write_config_fingerprint, write_machine_fingerprint};
use gis_core::SchedConfig;
use gis_ir::hash::Fnv64;
use gis_ir::Function;
use gis_machine::MachineDescription;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached scheduling result.
#[derive(Debug)]
pub struct CachedSchedule {
    /// The scheduled function's textual form.
    pub text: String,
    /// FNV-64 of `text` — the schedule hash clients compare.
    pub hash: u64,
    /// Useful motions performed when this schedule was computed.
    pub moved_useful: u64,
    /// Speculative motions performed when this schedule was computed.
    pub moved_speculative: u64,
    /// Wall time of the original (cold) compile, in nanoseconds.
    pub nanos: u64,
}

struct Entry {
    value: Arc<CachedSchedule>,
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// stamp → key, for O(log n) least-recently-used eviction.
    by_stamp: BTreeMap<u64, u64>,
    clock: u64,
}

/// A bounded, thread-safe, content-addressed map from cache key to
/// scheduled result with least-recently-used eviction.
pub struct ScheduleCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` schedules. Capacity `0`
    /// disables caching entirely (every lookup misses, inserts are
    /// dropped) — useful for measuring cold throughput.
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a key, bumping its recency on a hit. Counts the access.
    pub fn get(&self, key: u64) -> Option<Arc<CachedSchedule>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.stamp, stamp);
                let value = Arc::clone(&entry.value);
                inner.by_stamp.remove(&old);
                inner.by_stamp.insert(stamp, key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a schedule, evicting the least-recently
    /// used entry if the cache is full. Concurrent compiles of the same
    /// key may both insert; the later one wins, which is harmless because
    /// scheduling is deterministic — both hold identical results.
    pub fn insert(&self, key: u64, value: Arc<CachedSchedule>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.by_stamp.remove(&old.stamp);
        } else if inner.map.len() >= self.capacity {
            if let Some((&oldest_stamp, &oldest_key)) = inner.by_stamp.iter().next() {
                inner.by_stamp.remove(&oldest_stamp);
                inner.map.remove(&oldest_key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { value, stamp });
        inner.by_stamp.insert(stamp, key);
    }

    /// Number of schedules currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The counters as `(name, value)` pairs for the metrics registry
    /// (`cache.` prefix groups them in the sorted listing, next to the
    /// scheduler's `perf.` counters).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cache.hits", self.hits()),
            ("cache.misses", self.misses()),
            ("cache.evictions", self.evictions()),
            ("cache.entries", self.len() as u64),
            ("cache.capacity", self.capacity as u64),
        ]
    }

    /// Serializes every entry into a versioned binary image, least
    /// recently used first, so [`ScheduleCache::load`] re-inserting in
    /// image order reproduces the recency order exactly. Counters are
    /// not persisted — they describe one daemon's lifetime, not the
    /// cache contents.
    pub fn dump(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("cache lock");
        let mut out = Vec::new();
        out.extend_from_slice(DUMP_MAGIC);
        out.extend_from_slice(&DUMP_VERSION.to_le_bytes());
        out.extend_from_slice(&(inner.map.len() as u64).to_le_bytes());
        for key in inner.by_stamp.values() {
            let entry = &inner.map[key];
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&entry.value.hash.to_le_bytes());
            out.extend_from_slice(&entry.value.moved_useful.to_le_bytes());
            out.extend_from_slice(&entry.value.moved_speculative.to_le_bytes());
            out.extend_from_slice(&entry.value.nanos.to_le_bytes());
            out.extend_from_slice(&(entry.value.text.len() as u64).to_le_bytes());
            out.extend_from_slice(entry.value.text.as_bytes());
        }
        out
    }

    /// Restores entries from a [`ScheduleCache::dump`] image, returning
    /// how many were inserted (at most the capacity — inserting in image
    /// order evicts the least recently used overflow first, like any
    /// other insert).
    ///
    /// # Errors
    ///
    /// Returns a message when the image is not a schedule-cache dump, is
    /// a version this build does not speak, or is truncated. The cache
    /// is left unchanged in every error case except a mid-image
    /// truncation, which keeps the entries decoded before the cut —
    /// each was individually well-formed.
    pub fn load(&self, bytes: &[u8]) -> Result<usize, String> {
        struct Cursor<'a>(&'a [u8]);
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.0.len() < n {
                    return Err("schedule-cache image is truncated".to_owned());
                }
                let (head, tail) = self.0.split_at(n);
                self.0 = tail;
                Ok(head)
            }
            fn take_u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(
                    self.take(8)?.try_into().expect("eight bytes"),
                ))
            }
        }
        let mut cur = Cursor(bytes);
        if cur.take(4)? != DUMP_MAGIC {
            return Err("not a schedule-cache image (bad magic)".to_owned());
        }
        let version = u32::from_le_bytes(cur.take(4)?.try_into().expect("four bytes"));
        if version != DUMP_VERSION {
            return Err(format!(
                "schedule-cache image version {version} (this build speaks {DUMP_VERSION})"
            ));
        }
        let count = cur.take_u64()?;
        let mut loaded = 0usize;
        for _ in 0..count {
            let key = cur.take_u64()?;
            let hash = cur.take_u64()?;
            let moved_useful = cur.take_u64()?;
            let moved_speculative = cur.take_u64()?;
            let nanos = cur.take_u64()?;
            let text_len = cur.take_u64()? as usize;
            let text = String::from_utf8(cur.take(text_len)?.to_vec())
                .map_err(|_| "schedule-cache image holds non-UTF-8 text".to_owned())?;
            self.insert(
                key,
                Arc::new(CachedSchedule {
                    text,
                    hash,
                    moved_useful,
                    moved_speculative,
                    nanos,
                }),
            );
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// Magic prefix of a persisted cache image.
const DUMP_MAGIC: &[u8; 4] = b"GISC";
/// Image format version; bump on any layout change so an upgraded
/// daemon rejects old images instead of misreading them.
const DUMP_VERSION: u32 = 1;

/// The cache key for scheduling `function` on `machine` under `config`:
/// FNV-64 over the function's canonical bytes chained with the machine
/// and config fingerprints (shared with the in-process region memo via
/// [`gis_core::fingerprint`]). See `docs/SERVICE.md` for the stability
/// contract.
pub fn cache_key(function: &Function, machine: &MachineDescription, config: &SchedConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write(&gis_ir::to_canonical_bytes(function));
    write_machine_fingerprint(&mut h, machine);
    write_config_fingerprint(&mut h, config, function.inst_id_bound());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    fn entry(n: u64) -> Arc<CachedSchedule> {
        Arc::new(CachedSchedule {
            text: format!("schedule {n}"),
            hash: n,
            moved_useful: 0,
            moved_speculative: 0,
            nanos: 1,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ScheduleCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, entry(1));
        assert_eq!(cache.get(1).expect("hit").hash, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ScheduleCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        // Touch 1 so 2 becomes the least recently used.
        assert!(cache.get(1).is_some());
        cache.insert(3, entry(3));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2).is_none(), "2 was evicted");
        assert!(cache.get(1).is_some(), "1 survived");
        assert!(cache.get(3).is_some(), "3 inserted");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ScheduleCache::new(0);
        cache.insert(1, entry(1));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_does_not_evict() {
        let cache = ScheduleCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        cache.insert(1, entry(10));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(1).expect("present").hash, 10, "refreshed");
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn key_separates_function_machine_and_config() {
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let g = parse_function("func t\ne:\n LI r0=2\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let wide = MachineDescription::wide(4);
        let spec = SchedConfig::speculative();
        let base = SchedConfig::base();
        let k = cache_key(&f, &rs6k, &spec);
        assert_eq!(k, cache_key(&f, &rs6k, &spec), "deterministic");
        assert_ne!(k, cache_key(&g, &rs6k, &spec), "function matters");
        assert_ne!(k, cache_key(&f, &wide, &spec), "machine matters");
        assert_ne!(k, cache_key(&f, &rs6k, &base), "config matters");
    }

    #[test]
    fn duplication_splits_the_key_only_when_enabled() {
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let off = SchedConfig::speculative();
        let mut on = SchedConfig::speculative();
        on.duplication = true;
        assert_ne!(
            cache_key(&f, &rs6k, &off),
            cache_key(&f, &rs6k, &on),
            "the gate changes schedules, so it must split the key"
        );
    }

    #[test]
    fn pre_duplication_cache_keys_are_stable() {
        // Pinned key values captured before the duplication option
        // existed: a daemon upgraded across that change must keep every
        // existing cache entry addressable (options added after
        // config/v1 are hashed only when enabled). If this test breaks,
        // the fingerprint changed for requests that never asked for the
        // new option — deployed caches would all go cold.
        let f = parse_function("func t\ne:\n LI r0=1\n LI r1=2\n A r2=r0,r1\n PRINT r2\n RET\n")
            .expect("parses");
        let rs6k = MachineDescription::rs6k();
        let wide = MachineDescription::wide(4);
        let cases: [(SchedConfig, u64, u64); 4] = [
            (
                SchedConfig::speculative(),
                0xba5ea029aa93c627,
                0xd96b006c6a768050,
            ),
            (
                SchedConfig::useful(),
                0x44aab82336fe7914,
                0x4f1ee872de0bcd63,
            ),
            (SchedConfig::base(), 0x956037272a49399d, 0xfbd2a088d458745a),
            (
                SchedConfig::paper_example(gis_core::SchedLevel::Speculative),
                0x2f65a4a660f37a8f,
                0x61cd33099dae3368,
            ),
        ];
        for (config, on_rs6k, on_wide) in cases {
            assert_eq!(cache_key(&f, &rs6k, &config), on_rs6k, "{config:?}");
            assert_eq!(cache_key(&f, &wide, &config), on_wide, "{config:?}");
        }
    }

    #[test]
    fn dump_and_load_round_trip_preserves_recency() {
        let cache = ScheduleCache::new(4);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        cache.insert(3, entry(3));
        assert!(cache.get(1).is_some(), "1 becomes most recent");
        let image = cache.dump();

        let restored = ScheduleCache::new(2);
        // Capacity 2: inserting 2, 3, 1 in recency order evicts 2 — the
        // least recently used survives last.
        assert_eq!(restored.load(&image).expect("loads"), 3);
        assert_eq!(restored.len(), 2);
        assert!(restored.get(2).is_none(), "LRU overflow evicted");
        assert_eq!(restored.get(1).expect("kept").hash, 1);
        assert_eq!(restored.get(3).expect("kept").hash, 3);
        let full = ScheduleCache::new(8);
        assert_eq!(full.load(&image).expect("loads"), 3);
        assert_eq!(full.get(2).expect("kept").text, "schedule 2");
    }

    #[test]
    fn load_rejects_foreign_and_stale_images() {
        let cache = ScheduleCache::new(4);
        assert!(cache.load(b"not a cache image").is_err());
        assert!(cache.load(b"GI").is_err(), "truncated magic");
        let mut stale = ScheduleCache::new(1).dump();
        stale[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = cache.load(&stale).expect_err("stale version");
        assert!(err.contains("version 99"), "{err}");
        let mut cut = {
            let full = ScheduleCache::new(4);
            full.insert(1, entry(1));
            full.dump()
        };
        cut.truncate(cut.len() - 3);
        assert!(cache.load(&cut).is_err(), "truncated entry");
        assert!(cache.is_empty(), "rejected images leave nothing behind");
    }

    #[test]
    fn jobs_does_not_split_the_key() {
        // `--jobs` is bit-identical by contract, so warm hits must carry
        // across differing job counts.
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let mut one = SchedConfig::speculative();
        one.jobs = 1;
        let mut four = SchedConfig::speculative();
        four.jobs = 4;
        assert_eq!(cache_key(&f, &rs6k, &one), cache_key(&f, &rs6k, &four));
    }
}
