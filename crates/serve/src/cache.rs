//! The content-addressed schedule cache.
//!
//! Scheduling a region is pure: the scheduled text is a function of the
//! input IR (including its fresh-id allocator state), the machine
//! description, and the scheduling configuration — nothing else. So the
//! cache key is a content address: the FNV-64 of the function's
//! [canonical bytes](gis_ir::canon) chained with fingerprints of the
//! machine and the config (see [`cache_key`]). Repeated compiles of the
//! same function — the common case for a daemon serving a build farm's
//! hot functions — become a hash-map lookup instead of a full pipeline
//! run, the same block-cache idea JITs use to avoid re-translating
//! unchanged code.
//!
//! Eviction is least-recently-used over a bounded capacity: every access
//! bumps a monotonic stamp, and inserting past capacity evicts the entry
//! with the smallest stamp (a `BTreeMap` from stamp to key makes both
//! the bump and the eviction `O(log n)`). Hit, miss and eviction counts
//! are kept in atomics so the serving threads never contend on the
//! counters.

use gis_core::{SchedConfig, SchedLevel};
use gis_ir::hash::Fnv64;
use gis_ir::{Function, OpClass};
use gis_machine::MachineDescription;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached scheduling result.
#[derive(Debug)]
pub struct CachedSchedule {
    /// The scheduled function's textual form.
    pub text: String,
    /// FNV-64 of `text` — the schedule hash clients compare.
    pub hash: u64,
    /// Useful motions performed when this schedule was computed.
    pub moved_useful: u64,
    /// Speculative motions performed when this schedule was computed.
    pub moved_speculative: u64,
    /// Wall time of the original (cold) compile, in nanoseconds.
    pub nanos: u64,
}

struct Entry {
    value: Arc<CachedSchedule>,
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// stamp → key, for O(log n) least-recently-used eviction.
    by_stamp: BTreeMap<u64, u64>,
    clock: u64,
}

/// A bounded, thread-safe, content-addressed map from cache key to
/// scheduled result with least-recently-used eviction.
pub struct ScheduleCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` schedules. Capacity `0`
    /// disables caching entirely (every lookup misses, inserts are
    /// dropped) — useful for measuring cold throughput.
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a key, bumping its recency on a hit. Counts the access.
    pub fn get(&self, key: u64) -> Option<Arc<CachedSchedule>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.stamp, stamp);
                let value = Arc::clone(&entry.value);
                inner.by_stamp.remove(&old);
                inner.by_stamp.insert(stamp, key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a schedule, evicting the least-recently
    /// used entry if the cache is full. Concurrent compiles of the same
    /// key may both insert; the later one wins, which is harmless because
    /// scheduling is deterministic — both hold identical results.
    pub fn insert(&self, key: u64, value: Arc<CachedSchedule>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.by_stamp.remove(&old.stamp);
        } else if inner.map.len() >= self.capacity {
            if let Some((&oldest_stamp, &oldest_key)) = inner.by_stamp.iter().next() {
                inner.by_stamp.remove(&oldest_stamp);
                inner.map.remove(&oldest_key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { value, stamp });
        inner.by_stamp.insert(stamp, key);
    }

    /// Number of schedules currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The counters as `(name, value)` pairs for the metrics registry
    /// (`cache.` prefix groups them in the sorted listing, next to the
    /// scheduler's `perf.` counters).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cache.hits", self.hits()),
            ("cache.misses", self.misses()),
            ("cache.evictions", self.evictions()),
            ("cache.entries", self.len() as u64),
            ("cache.capacity", self.capacity as u64),
        ]
    }
}

/// Every [`OpClass`], in a fixed order, for machine fingerprinting.
const ALL_CLASSES: [OpClass; 12] = [
    OpClass::Fx,
    OpClass::FxMul,
    OpClass::FxDiv,
    OpClass::Load,
    OpClass::Store,
    OpClass::FxCompare,
    OpClass::Fp,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpCompare,
    OpClass::Branch,
    OpClass::Call,
];

/// Feeds every schedule-relevant property of the machine description into
/// the hasher: name, dispatch width, per-class unit assignment, unit
/// counts, execution times, and the full producer→consumer delay matrix.
/// Two presets that schedule identically but are *named* differently
/// still fingerprint apart — names are part of the operator contract.
fn write_machine_fingerprint(h: &mut Fnv64, machine: &MachineDescription) {
    h.write(b"machine/v1\0");
    h.write(machine.name().as_bytes());
    h.write_u8(0);
    h.write_u32(machine.dispatch_width());
    for kind in machine.unit_kinds() {
        h.write_u32(kind.index() as u32);
        h.write_u32(machine.unit_count(kind));
        h.write(machine.unit_name(kind).as_bytes());
        h.write_u8(0);
    }
    for class in ALL_CLASSES {
        h.write_u32(machine.unit_of(class).index() as u32);
        h.write_u32(machine.exec_time(class));
    }
    for producer in ALL_CLASSES {
        for consumer in ALL_CLASSES {
            h.write_u32(machine.delay(producer, consumer));
        }
    }
}

/// Feeds every output-relevant scheduling option into the hasher.
///
/// `jobs` and `reference_hot_paths` are deliberately **excluded**: both
/// are guaranteed (and differentially tested) to produce bit-identical
/// schedules, so including them would only split the cache for no
/// correctness gain. Debug-only fields (`verify_each_pass`, fault
/// injection) are excluded for the same reason they must never be set in
/// a serving daemon. A branch profile, if present, is hashed entry by
/// entry (probed over the function's instruction-id range — profiles key
/// on [`gis_ir::InstId`], so their content is per-function anyway).
fn write_config_fingerprint(h: &mut Fnv64, config: &SchedConfig, inst_bound: usize) {
    h.write(b"config/v1\0");
    h.write_u8(match config.level {
        SchedLevel::BasicBlockOnly => 0,
        SchedLevel::Useful => 1,
        SchedLevel::Speculative => 2,
    });
    h.write_u8(u8::from(config.rename));
    h.write_u8(u8::from(config.unroll));
    h.write_u64(config.unroll_times as u64);
    h.write_u8(u8::from(config.rotate));
    h.write_u64(config.small_loop_blocks as u64);
    h.write_u64(config.max_region_blocks as u64);
    h.write_u64(config.max_region_insts as u64);
    h.write_u64(config.max_region_height as u64);
    h.write_u8(u8::from(config.speculative_loads));
    h.write_u8(u8::from(config.speculative_renaming));
    h.write_u8(u8::from(config.final_bb_pass));
    h.write_u64(config.min_speculation_probability.to_bits());
    h.write_u64(config.max_speculation_branches as u64);
    match &config.profile {
        None => h.write_u8(0),
        Some(profile) => {
            h.write_u8(1);
            for id in 0..inst_bound as u32 {
                if let Some(p) = profile.taken_probability(gis_ir::InstId::new(id)) {
                    h.write_u32(id);
                    h.write_u64(p.to_bits());
                }
            }
        }
    }
    // Options added after v1 are hashed only when *enabled*, appended at
    // the end: a request that does not use them fingerprints exactly as
    // it did before the option existed, so deployed caches stay warm
    // across upgrades (the stability contract in docs/SERVICE.md).
    if config.duplication {
        h.write(b"dup/v1\0");
    }
}

/// The cache key for scheduling `function` on `machine` under `config`:
/// FNV-64 over the function's canonical bytes chained with the machine
/// and config fingerprints. See `docs/SERVICE.md` for the stability
/// contract.
pub fn cache_key(function: &Function, machine: &MachineDescription, config: &SchedConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write(&gis_ir::to_canonical_bytes(function));
    write_machine_fingerprint(&mut h, machine);
    write_config_fingerprint(&mut h, config, function.inst_id_bound());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ir::parse_function;

    fn entry(n: u64) -> Arc<CachedSchedule> {
        Arc::new(CachedSchedule {
            text: format!("schedule {n}"),
            hash: n,
            moved_useful: 0,
            moved_speculative: 0,
            nanos: 1,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ScheduleCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, entry(1));
        assert_eq!(cache.get(1).expect("hit").hash, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ScheduleCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        // Touch 1 so 2 becomes the least recently used.
        assert!(cache.get(1).is_some());
        cache.insert(3, entry(3));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2).is_none(), "2 was evicted");
        assert!(cache.get(1).is_some(), "1 survived");
        assert!(cache.get(3).is_some(), "3 inserted");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ScheduleCache::new(0);
        cache.insert(1, entry(1));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_does_not_evict() {
        let cache = ScheduleCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        cache.insert(1, entry(10));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(1).expect("present").hash, 10, "refreshed");
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn key_separates_function_machine_and_config() {
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let g = parse_function("func t\ne:\n LI r0=2\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let wide = MachineDescription::wide(4);
        let spec = SchedConfig::speculative();
        let base = SchedConfig::base();
        let k = cache_key(&f, &rs6k, &spec);
        assert_eq!(k, cache_key(&f, &rs6k, &spec), "deterministic");
        assert_ne!(k, cache_key(&g, &rs6k, &spec), "function matters");
        assert_ne!(k, cache_key(&f, &wide, &spec), "machine matters");
        assert_ne!(k, cache_key(&f, &rs6k, &base), "config matters");
    }

    #[test]
    fn duplication_splits_the_key_only_when_enabled() {
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let off = SchedConfig::speculative();
        let mut on = SchedConfig::speculative();
        on.duplication = true;
        assert_ne!(
            cache_key(&f, &rs6k, &off),
            cache_key(&f, &rs6k, &on),
            "the gate changes schedules, so it must split the key"
        );
    }

    #[test]
    fn pre_duplication_cache_keys_are_stable() {
        // Pinned key values captured before the duplication option
        // existed: a daemon upgraded across that change must keep every
        // existing cache entry addressable (options added after
        // config/v1 are hashed only when enabled). If this test breaks,
        // the fingerprint changed for requests that never asked for the
        // new option — deployed caches would all go cold.
        let f = parse_function("func t\ne:\n LI r0=1\n LI r1=2\n A r2=r0,r1\n PRINT r2\n RET\n")
            .expect("parses");
        let rs6k = MachineDescription::rs6k();
        let wide = MachineDescription::wide(4);
        let cases: [(SchedConfig, u64, u64); 4] = [
            (
                SchedConfig::speculative(),
                0xba5ea029aa93c627,
                0xd96b006c6a768050,
            ),
            (
                SchedConfig::useful(),
                0x44aab82336fe7914,
                0x4f1ee872de0bcd63,
            ),
            (SchedConfig::base(), 0x956037272a49399d, 0xfbd2a088d458745a),
            (
                SchedConfig::paper_example(gis_core::SchedLevel::Speculative),
                0x2f65a4a660f37a8f,
                0x61cd33099dae3368,
            ),
        ];
        for (config, on_rs6k, on_wide) in cases {
            assert_eq!(cache_key(&f, &rs6k, &config), on_rs6k, "{config:?}");
            assert_eq!(cache_key(&f, &wide, &config), on_wide, "{config:?}");
        }
    }

    #[test]
    fn jobs_does_not_split_the_key() {
        // `--jobs` is bit-identical by contract, so warm hits must carry
        // across differing job counts.
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let rs6k = MachineDescription::rs6k();
        let mut one = SchedConfig::speculative();
        one.jobs = 1;
        let mut four = SchedConfig::speculative();
        four.jobs = 4;
        assert_eq!(cache_key(&f, &rs6k, &one), cache_key(&f, &rs6k, &four));
    }
}
