//! Scheduling as a service.
//!
//! `gis-serve` turns the scheduling pipeline into a long-running daemon:
//! a listener on a unix socket or TCP port speaks a JSON-lines protocol
//! ([`protocol`]), fans work out across a fixed pool of scheduler
//! threads ([`server`]), and memoizes results in a bounded
//! content-addressed cache ([`cache`]) keyed by the FNV-64 of the
//! function's canonical IR bytes plus machine and configuration
//! fingerprints. A build system recompiling a mostly-unchanged program
//! pays the full pipeline only for functions whose IR actually changed;
//! everything else is a hash lookup.
//!
//! The [`client`] module is the matching in-process client, used by
//! `gisc serve-request`, the load generator and the benchmark harness.
//!
//! Protocol and cache-key stability contracts live in `docs/SERVICE.md`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{cache_key, CachedSchedule, ScheduleCache};
pub use client::Client;
pub use protocol::{
    parse_request, parse_response, resolve_machine, BatchSummary, ConfigSpec, FuncOutcome,
    FuncSpec, Lang, Request, Response, ScheduleRequest,
};
pub use server::{install_signal_handlers, signal_pending, start, Listen, ServeConfig, Server};

use gis_core::SchedStats;

/// The scheduler's performance counters as metric name/value pairs —
/// the same names `gisc --metrics` prints for one-shot compiles, so
/// daemon metrics and CLI metrics line up.
pub fn perf_counters(stats: &SchedStats) -> [(&'static str, u64); 6] {
    [
        ("perf.dep-edges", stats.dep_edges as u64),
        ("perf.dep-edges-reduced", stats.dep_edges_reduced as u64),
        ("perf.liveness-full", stats.liveness_full as u64),
        (
            "perf.liveness-incremental",
            stats.liveness_incremental as u64,
        ),
        ("perf.scratch-allocs", stats.scratch_allocs as u64),
        ("perf.scratch-reuses", stats.scratch_reuses as u64),
    ]
}
