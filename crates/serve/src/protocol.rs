//! The JSON-lines wire protocol.
//!
//! Every request and every response is one compact JSON object on one
//! line, terminated by `\n` — the same framing as `gis-trace` event
//! streams, and built on the same [`Json`] value type. A connection
//! carries any number of requests; responses to a `schedule` batch are
//! *streamed* (one line per function, in input order, followed by a
//! `batch-end` summary line) so a client can pipeline work and observe
//! progress. Protocol errors are answered with a `{"resp":"error",...}`
//! line and the connection stays open; only I/O failure or an oversized
//! line after `shutdown` closes it.
//!
//! The full request/response grammar is specified in `docs/SERVICE.md`.

use gis_core::SchedConfig;
use gis_machine::MachineDescription;
use gis_trace::Json;

/// The source language of a submitted function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// Tiny-C source; each function compiles through `gis-tinyc`.
    TinyC,
    /// The textual IR accepted by [`gis_ir::parse_function`].
    Asm,
}

/// One function in a `schedule` batch.
#[derive(Debug, Clone)]
pub struct FuncSpec {
    /// Optional display name; defaults to the function's own name.
    pub name: Option<String>,
    /// The program text (tiny-C or textual IR, per the batch [`Lang`]).
    pub text: String,
}

/// Scheduling options carried by a `schedule` request. Unset fields keep
/// the preset's defaults, so an empty `"config":{}` means the full
/// speculative pipeline.
#[derive(Debug, Clone, Default)]
pub struct ConfigSpec {
    /// `"base"`, `"useful"` or `"speculative"` (the default).
    pub preset: Option<String>,
    /// Override [`SchedConfig::rename`].
    pub rename: Option<bool>,
    /// Override [`SchedConfig::unroll`].
    pub unroll: Option<bool>,
    /// Override [`SchedConfig::rotate`].
    pub rotate: Option<bool>,
    /// Override [`SchedConfig::final_bb_pass`].
    pub final_bb: Option<bool>,
    /// Override [`SchedConfig::max_speculation_branches`].
    pub max_branches: Option<usize>,
    /// Override [`SchedConfig::duplication`].
    pub duplication: Option<bool>,
}

impl ConfigSpec {
    /// Resolves the spec to a concrete [`SchedConfig`].
    ///
    /// # Errors
    ///
    /// Returns a message when the preset name is unknown.
    pub fn resolve(&self) -> Result<SchedConfig, String> {
        let mut config = match self.preset.as_deref() {
            None | Some("speculative") => SchedConfig::speculative(),
            Some("useful") => SchedConfig::useful(),
            Some("base") => SchedConfig::base(),
            Some(other) => {
                return Err(format!(
                    "unknown config preset '{other}' (expected base, useful or speculative)"
                ))
            }
        };
        if let Some(v) = self.rename {
            config.rename = v;
        }
        if let Some(v) = self.unroll {
            config.unroll = v;
        }
        if let Some(v) = self.rotate {
            config.rotate = v;
        }
        if let Some(v) = self.final_bb {
            config.final_bb_pass = v;
        }
        if let Some(v) = self.max_branches {
            config.max_speculation_branches = v;
        }
        if let Some(v) = self.duplication {
            config.duplication = v;
        }
        Ok(config)
    }
}

/// A `schedule` request: a batch of functions to compile under one
/// machine and configuration.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// Client-chosen request id, echoed on every response line.
    pub id: i64,
    /// Language of every function in the batch.
    pub lang: Lang,
    /// Machine preset name (`rs6k`, `scalar`, `wideN`).
    pub machine: String,
    /// Scheduling options.
    pub config: ConfigSpec,
    /// The batch, scheduled and answered in this order.
    pub funcs: Vec<FuncSpec>,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: i64,
    },
    /// Ask for the daemon's counters.
    Stats {
        /// Echoed id.
        id: i64,
    },
    /// Ask the daemon to drain and exit.
    Shutdown {
        /// Echoed id.
        id: i64,
    },
    /// Compile a batch.
    Schedule(ScheduleRequest),
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn as_i64(v: &Json) -> Option<i64> {
    match v {
        Json::Int(i) => Some(*i),
        _ => None,
    }
}

fn as_bool(v: &Json) -> Option<bool> {
    match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Parses one request line. The error string is ready to ship back in an
/// `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".to_owned());
    }
    let req = v
        .get("req")
        .and_then(as_str)
        .ok_or("request is missing the \"req\" member")?;
    let id = v.get("id").and_then(as_i64).unwrap_or(0);
    match req {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "schedule" => {
            let lang = match v.get("lang").and_then(as_str) {
                None | Some("tinyc") => Lang::TinyC,
                Some("asm") => Lang::Asm,
                Some(other) => {
                    return Err(format!("unknown lang '{other}' (expected tinyc or asm)"))
                }
            };
            let machine = v
                .get("machine")
                .and_then(as_str)
                .unwrap_or("rs6k")
                .to_owned();
            let mut config = ConfigSpec::default();
            if let Some(c) = v.get("config") {
                if !matches!(c, Json::Obj(_)) {
                    return Err("\"config\" must be an object".to_owned());
                }
                config.preset = c.get("preset").and_then(as_str).map(str::to_owned);
                config.rename = c.get("rename").and_then(as_bool);
                config.unroll = c.get("unroll").and_then(as_bool);
                config.rotate = c.get("rotate").and_then(as_bool);
                config.final_bb = c.get("final_bb").and_then(as_bool);
                config.max_branches = c
                    .get("max_branches")
                    .and_then(as_i64)
                    .and_then(|n| usize::try_from(n).ok());
                config.duplication = c.get("duplication").and_then(as_bool);
            }
            let funcs = match v.get("funcs") {
                Some(Json::Arr(items)) if !items.is_empty() => items
                    .iter()
                    .map(|f| {
                        let text = f
                            .get("text")
                            .and_then(as_str)
                            .ok_or("every func needs a \"text\" member")?;
                        Ok(FuncSpec {
                            name: f.get("name").and_then(as_str).map(str::to_owned),
                            text: text.to_owned(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                Some(Json::Arr(_)) => return Err("\"funcs\" must not be empty".to_owned()),
                _ => return Err("schedule request needs a \"funcs\" array".to_owned()),
            };
            Ok(Request::Schedule(ScheduleRequest {
                id,
                lang,
                machine,
                config,
                funcs,
            }))
        }
        other => Err(format!(
            "unknown request '{other}' (expected schedule, stats, ping or shutdown)"
        )),
    }
}

/// Resolves a machine preset name the same way the `gisc` CLI does —
/// both route through [`MachineDescription::by_name`], so every surface
/// accepts the same presets.
///
/// # Errors
///
/// Returns a message when the name is not `rs6k`, `scalar`, `issue2`,
/// `issue4`, `issue8`, `wideN` or `vliwN`.
pub fn resolve_machine(name: &str) -> Result<MachineDescription, String> {
    MachineDescription::by_name(name).ok_or_else(|| {
        format!("unknown machine '{name}' (expected rs6k, scalar, issue2/4/8, wideN or vliwN)")
    })
}

// ---------------------------------------------------------------------
// Response lines (server → client)
// ---------------------------------------------------------------------

fn obj(resp: &str, rest: Vec<(&str, Json)>) -> String {
    let mut members = vec![("resp".to_owned(), Json::Str(resp.to_owned()))];
    members.extend(rest.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(members).to_string()
}

/// `pong` line.
pub fn pong_line(id: i64) -> String {
    obj("pong", vec![("id", Json::Int(id))])
}

/// `shutdown` acknowledgement line.
pub fn shutdown_line(id: i64) -> String {
    obj("shutdown", vec![("id", Json::Int(id))])
}

/// `stats` line carrying the daemon counters.
pub fn stats_line(id: i64, counters: &[(String, u64)]) -> String {
    let members = counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
        .collect();
    obj(
        "stats",
        vec![("id", Json::Int(id)), ("counters", Json::Obj(members))],
    )
}

/// Protocol `error` line (connection stays open).
pub fn error_line(message: &str) -> String {
    obj("error", vec![("error", Json::Str(message.to_owned()))])
}

/// The per-function outcome carried by one `schedule` response line.
#[derive(Debug, Clone)]
pub enum FuncOutcome {
    /// Scheduled (possibly from cache).
    Ok {
        /// Whether the schedule came from the cache.
        cached: bool,
        /// FNV-64 of the scheduled text.
        hash: u64,
        /// Compile time (cold) or lookup time (warm), nanoseconds.
        nanos: u64,
        /// Useful motions.
        moved_useful: u64,
        /// Speculative motions.
        moved_speculative: u64,
        /// The scheduled function text.
        schedule: String,
    },
    /// Compilation failed (parse error, verifier rejection, ...).
    Error {
        /// What went wrong.
        message: String,
    },
    /// The per-function deadline expired before a result was ready.
    Timeout,
}

/// One `schedule` response line for function `index` of batch `id`.
pub fn schedule_line(id: i64, index: usize, name: &str, outcome: &FuncOutcome) -> String {
    let mut rest = vec![
        ("id", Json::Int(id)),
        ("index", Json::Int(index as i64)),
        ("name", Json::Str(name.to_owned())),
    ];
    match outcome {
        FuncOutcome::Ok {
            cached,
            hash,
            nanos,
            moved_useful,
            moved_speculative,
            schedule,
        } => {
            rest.push(("status", Json::Str("ok".to_owned())));
            rest.push(("cached", Json::Bool(*cached)));
            rest.push(("hash", Json::Str(format!("{hash:016x}"))));
            rest.push(("nanos", Json::Int(*nanos as i64)));
            rest.push(("moved_useful", Json::Int(*moved_useful as i64)));
            rest.push(("moved_speculative", Json::Int(*moved_speculative as i64)));
            rest.push(("schedule", Json::Str(schedule.clone())));
        }
        FuncOutcome::Error { message } => {
            rest.push(("status", Json::Str("error".to_owned())));
            rest.push(("error", Json::Str(message.clone())));
        }
        FuncOutcome::Timeout => {
            rest.push(("status", Json::Str("timeout".to_owned())));
        }
    }
    obj("schedule", rest)
}

/// The `batch-end` summary line closing batch `id`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Functions in the batch.
    pub count: u64,
    /// Functions that scheduled successfully.
    pub ok: u64,
    /// Functions that failed or timed out.
    pub errors: u64,
    /// Cache hits within the batch.
    pub cache_hits: u64,
    /// Cache misses within the batch.
    pub cache_misses: u64,
    /// Wall time for the whole batch, nanoseconds.
    pub nanos: u64,
}

/// Serializes the `batch-end` line.
pub fn batch_end_line(id: i64, summary: &BatchSummary) -> String {
    obj(
        "batch-end",
        vec![
            ("id", Json::Int(id)),
            ("count", Json::Int(summary.count as i64)),
            ("ok", Json::Int(summary.ok as i64)),
            ("errors", Json::Int(summary.errors as i64)),
            ("cache_hits", Json::Int(summary.cache_hits as i64)),
            ("cache_misses", Json::Int(summary.cache_misses as i64)),
            ("nanos", Json::Int(summary.nanos as i64)),
        ],
    )
}

// ---------------------------------------------------------------------
// Response parsing (client side)
// ---------------------------------------------------------------------

/// A parsed response line.
#[derive(Debug, Clone)]
pub enum Response {
    /// Reply to `ping`.
    Pong {
        /// Echoed id.
        id: i64,
    },
    /// Reply to `shutdown`.
    ShutdownAck {
        /// Echoed id.
        id: i64,
    },
    /// Reply to `stats`.
    Stats {
        /// Echoed id.
        id: i64,
        /// Counter name/value pairs, in server order.
        counters: Vec<(String, u64)>,
    },
    /// One function's result within a batch.
    Schedule {
        /// Echoed batch id.
        id: i64,
        /// Position within the batch.
        index: usize,
        /// Function display name.
        name: String,
        /// The outcome.
        outcome: FuncOutcome,
    },
    /// End of a batch.
    BatchEnd {
        /// Echoed batch id.
        id: i64,
        /// Totals.
        summary: BatchSummary,
    },
    /// A protocol error report.
    Error {
        /// The server's message.
        message: String,
    },
}

/// Parses one response line (the inverse of the serializers above).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed response JSON: {e}"))?;
    let resp = v
        .get("resp")
        .and_then(as_str)
        .ok_or("response is missing the \"resp\" member")?;
    let id = v.get("id").and_then(as_i64).unwrap_or(0);
    let u = |key: &str| -> u64 {
        v.get(key)
            .and_then(as_i64)
            .and_then(|n| u64::try_from(n).ok())
            .unwrap_or(0)
    };
    match resp {
        "pong" => Ok(Response::Pong { id }),
        "shutdown" => Ok(Response::ShutdownAck { id }),
        "error" => Ok(Response::Error {
            message: v
                .get("error")
                .and_then(as_str)
                .unwrap_or("unknown error")
                .to_owned(),
        }),
        "stats" => {
            let counters = match v.get("counters") {
                Some(Json::Obj(members)) => members
                    .iter()
                    .map(|(k, val)| {
                        let n = as_i64(val)
                            .and_then(|n| u64::try_from(n).ok())
                            .ok_or_else(|| format!("counter '{k}' is not a number"))?;
                        Ok((k.clone(), n))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("stats response has no \"counters\" object".to_owned()),
            };
            Ok(Response::Stats { id, counters })
        }
        "batch-end" => Ok(Response::BatchEnd {
            id,
            summary: BatchSummary {
                count: u("count"),
                ok: u("ok"),
                errors: u("errors"),
                cache_hits: u("cache_hits"),
                cache_misses: u("cache_misses"),
                nanos: u("nanos"),
            },
        }),
        "schedule" => {
            let name = v.get("name").and_then(as_str).unwrap_or("").to_owned();
            let index = usize::try_from(v.get("index").and_then(as_i64).unwrap_or(0))
                .map_err(|_| "bad index".to_owned())?;
            let outcome = match v.get("status").and_then(as_str) {
                Some("ok") => FuncOutcome::Ok {
                    cached: v.get("cached").and_then(as_bool).unwrap_or(false),
                    hash: v
                        .get("hash")
                        .and_then(as_str)
                        .and_then(|h| u64::from_str_radix(h, 16).ok())
                        .ok_or("schedule response has no valid \"hash\"")?,
                    nanos: u("nanos"),
                    moved_useful: u("moved_useful"),
                    moved_speculative: u("moved_speculative"),
                    schedule: v
                        .get("schedule")
                        .and_then(as_str)
                        .ok_or("schedule response has no \"schedule\" text")?
                        .to_owned(),
                },
                Some("error") => FuncOutcome::Error {
                    message: v
                        .get("error")
                        .and_then(as_str)
                        .unwrap_or("unknown error")
                        .to_owned(),
                },
                Some("timeout") => FuncOutcome::Timeout,
                _ => return Err("schedule response has no valid \"status\"".to_owned()),
            };
            Ok(Response::Schedule {
                id,
                index,
                name,
                outcome,
            })
        }
        other => Err(format!("unknown response '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::SchedLevel;

    #[test]
    fn parses_a_full_schedule_request() {
        let line = r#"{"req":"schedule","id":7,"lang":"asm","machine":"wide2",
            "config":{"preset":"useful","unroll":false,"max_branches":2},
            "funcs":[{"name":"f","text":"func f\ne:\n RET\n"}]}"#
            .replace('\n', " ");
        let Request::Schedule(req) = parse_request(&line).expect("parses") else {
            panic!("not a schedule request");
        };
        assert_eq!(req.id, 7);
        assert_eq!(req.lang, Lang::Asm);
        assert_eq!(req.machine, "wide2");
        assert_eq!(req.funcs.len(), 1);
        assert_eq!(req.funcs[0].name.as_deref(), Some("f"));
        let config = req.config.resolve().expect("resolves");
        assert_eq!(config.level, SchedLevel::Useful);
        assert!(!config.unroll);
        assert_eq!(config.max_speculation_branches, 2);
        assert!(!config.duplication, "not requested: preset default");
    }

    #[test]
    fn duplication_round_trips_through_config() {
        let line = r#"{"req":"schedule","id":1,"lang":"asm",
            "config":{"duplication":true},
            "funcs":[{"text":"func f\ne:\n RET\n"}]}"#
            .replace('\n', " ");
        let Request::Schedule(req) = parse_request(&line).expect("parses") else {
            panic!("not a schedule request");
        };
        assert_eq!(req.config.duplication, Some(true));
        let config = req.config.resolve().expect("resolves");
        assert!(config.duplication);
        // Explicitly off round-trips too (distinct from unset).
        let line = line.replace("true", "false");
        let Request::Schedule(req) = parse_request(&line).expect("parses") else {
            panic!("not a schedule request");
        };
        assert_eq!(req.config.duplication, Some(false));
        assert!(!req.config.resolve().expect("resolves").duplication);
    }

    #[test]
    fn defaults_fill_in() {
        let req = parse_request(r#"{"req":"schedule","funcs":[{"text":"int x;"}]}"#)
            .expect("minimal request parses");
        let Request::Schedule(req) = req else {
            panic!("not a schedule request");
        };
        assert_eq!(req.id, 0);
        assert_eq!(req.lang, Lang::TinyC);
        assert_eq!(req.machine, "rs6k");
        let config = req.config.resolve().expect("resolves");
        assert_eq!(config.level, SchedLevel::Speculative);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        assert!(parse_request(r#"{"req":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"req":"schedule"}"#).is_err());
        assert!(parse_request(r#"{"req":"schedule","funcs":[]}"#).is_err());
        assert!(parse_request(r#"{"req":"schedule","funcs":[{"name":"f"}]}"#).is_err());
        assert!(
            parse_request(r#"{"req":"schedule","lang":"cobol","funcs":[{"text":"x"}]}"#).is_err()
        );
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let spec = ConfigSpec {
            preset: Some("turbo".to_owned()),
            ..ConfigSpec::default()
        };
        assert!(spec.resolve().unwrap_err().contains("turbo"));
    }

    #[test]
    fn machine_names_resolve_like_the_cli() {
        assert_eq!(resolve_machine("rs6k").expect("rs6k").name(), "rs6k");
        assert_eq!(resolve_machine("scalar").expect("scalar").name(), "scalar");
        assert_eq!(resolve_machine("wide4").expect("wide4").name(), "wide4");
        assert!(resolve_machine("wide0").is_err());
        assert!(resolve_machine("wide9999").is_err());
        assert!(resolve_machine("pdp11").is_err());
    }

    #[test]
    fn response_lines_round_trip() {
        let ok = FuncOutcome::Ok {
            cached: true,
            hash: 0xdead_beef_0123_4567,
            nanos: 42,
            moved_useful: 3,
            moved_speculative: 1,
            schedule: "func f\ne:\n    (I0)   RET\n".to_owned(),
        };
        let line = schedule_line(9, 2, "f", &ok);
        let Response::Schedule {
            id,
            index,
            name,
            outcome,
        } = parse_response(&line).expect("parses")
        else {
            panic!("wrong response kind");
        };
        assert_eq!((id, index, name.as_str()), (9, 2, "f"));
        let FuncOutcome::Ok {
            cached,
            hash,
            schedule,
            ..
        } = outcome
        else {
            panic!("wrong outcome");
        };
        assert!(cached);
        assert_eq!(hash, 0xdead_beef_0123_4567);
        assert!(schedule.contains("RET"));

        let summary = BatchSummary {
            count: 4,
            ok: 3,
            errors: 1,
            cache_hits: 2,
            cache_misses: 2,
            nanos: 1000,
        };
        let line = batch_end_line(9, &summary);
        let Response::BatchEnd { id, summary: got } = parse_response(&line).expect("parses") else {
            panic!("wrong response kind");
        };
        assert_eq!(id, 9);
        assert_eq!(got, summary);

        assert!(matches!(
            parse_response(&pong_line(1)).expect("parses"),
            Response::Pong { id: 1 }
        ));
        assert!(matches!(
            parse_response(&shutdown_line(2)).expect("parses"),
            Response::ShutdownAck { id: 2 }
        ));
        let line = stats_line(3, &[("cache.hits".to_owned(), 5)]);
        let Response::Stats { counters, .. } = parse_response(&line).expect("parses") else {
            panic!("wrong response kind");
        };
        assert_eq!(counters, vec![("cache.hits".to_owned(), 5)]);
        assert!(matches!(
            parse_response(&error_line("boom")).expect("parses"),
            Response::Error { message } if message == "boom"
        ));
    }
}
