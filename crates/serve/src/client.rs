//! A blocking client for the daemon protocol.
//!
//! Used by `gisc serve-request`, the load generator and the benchmark
//! harness; also the reference implementation for clients in other
//! languages (the protocol is plain JSON lines, so a shell script with
//! `nc` works too).

use crate::protocol::{parse_response, BatchSummary, FuncOutcome, FuncSpec, Lang, Response};
use crate::server::Listen;
use gis_trace::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One function's result as seen by the client.
#[derive(Debug, Clone)]
pub struct FuncResult {
    /// Position within the batch.
    pub index: usize,
    /// Function display name.
    pub name: String,
    /// What happened.
    pub outcome: FuncOutcome,
}

/// A completed batch: per-function results in input order plus the
/// server's summary line.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-function results, in input order.
    pub funcs: Vec<FuncResult>,
    /// The `batch-end` totals.
    pub summary: BatchSummary,
}

/// A connected protocol client.
pub struct Client {
    writer: Conn,
    reader: BufReader<Conn>,
    next_id: i64,
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(listen: &Listen) -> io::Result<Client> {
        let (writer, reader) = match listen {
            Listen::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let r = s.try_clone()?;
                (Conn::Unix(s), Conn::Unix(r))
            }
            Listen::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let r = s.try_clone()?;
                (Conn::Tcp(s), Conn::Tcp(r))
            }
        };
        Ok(Client {
            writer,
            reader: BufReader::new(reader),
            next_id: 1,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(line.trim_end()).map_err(protocol_err)
    }

    fn fresh_id(&mut self) -> i64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected response kind.
    pub fn ping(&mut self) -> io::Result<()> {
        let id = self.fresh_id();
        self.send_line(&format!("{{\"req\":\"ping\",\"id\":{id}}}"))?;
        match self.read_response()? {
            Response::Pong { .. } => Ok(()),
            other => Err(protocol_err(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected response kind.
    pub fn stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        let id = self.fresh_id();
        self.send_line(&format!("{{\"req\":\"stats\",\"id\":{id}}}"))?;
        match self.read_response()? {
            Response::Stats { counters, .. } => Ok(counters),
            Response::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected response kind.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let id = self.fresh_id();
        self.send_line(&format!("{{\"req\":\"shutdown\",\"id\":{id}}}"))?;
        match self.read_response()? {
            Response::ShutdownAck { .. } => Ok(()),
            other => Err(protocol_err(format!("expected shutdown, got {other:?}"))),
        }
    }

    /// Submits a batch and collects its streamed results.
    ///
    /// `config` members mirror [`crate::protocol::ConfigSpec`]; pass an
    /// empty vec for the full speculative pipeline.
    ///
    /// # Errors
    ///
    /// I/O failure, a protocol error response, or a malformed stream.
    pub fn schedule_batch(
        &mut self,
        lang: Lang,
        machine: &str,
        config: Vec<(String, Json)>,
        funcs: &[FuncSpec],
    ) -> io::Result<BatchResult> {
        let id = self.fresh_id();
        let func_values: Vec<Json> = funcs
            .iter()
            .map(|f| {
                let mut members = Vec::new();
                if let Some(name) = &f.name {
                    members.push(("name".to_owned(), Json::Str(name.clone())));
                }
                members.push(("text".to_owned(), Json::Str(f.text.clone())));
                Json::Obj(members)
            })
            .collect();
        let request = Json::Obj(vec![
            ("req".to_owned(), Json::Str("schedule".to_owned())),
            ("id".to_owned(), Json::Int(id)),
            (
                "lang".to_owned(),
                Json::Str(match lang {
                    Lang::TinyC => "tinyc".to_owned(),
                    Lang::Asm => "asm".to_owned(),
                }),
            ),
            ("machine".to_owned(), Json::Str(machine.to_owned())),
            ("config".to_owned(), Json::Obj(config)),
            ("funcs".to_owned(), Json::Arr(func_values)),
        ]);
        self.send_line(&request.to_string())?;

        let mut results = Vec::with_capacity(funcs.len());
        loop {
            match self.read_response()? {
                Response::Schedule {
                    index,
                    name,
                    outcome,
                    ..
                } => results.push(FuncResult {
                    index,
                    name,
                    outcome,
                }),
                Response::BatchEnd { summary, .. } => {
                    return Ok(BatchResult {
                        funcs: results,
                        summary,
                    })
                }
                Response::Error { message } => return Err(protocol_err(message)),
                other => {
                    return Err(protocol_err(format!(
                        "unexpected response in batch stream: {other:?}"
                    )))
                }
            }
        }
    }

    /// Sends a raw request line and returns the raw response line —
    /// the escape hatch `gisc serve-request --raw` uses.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn round_trip_raw(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}
