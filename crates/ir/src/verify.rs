//! Structural verification of functions.

use crate::block::{BlockId, InstId};
use crate::function::Function;
use crate::op::check_operand_classes;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural invariant violated by a [`Function`].
///
/// Returned by [`Function::verify`]; transformation passes re-verify after
/// mutating a function, so a failure here indicates a bug in the pass (or a
/// hand-built function that was never well formed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyFunctionError {
    /// The function has no blocks.
    Empty,
    /// Two blocks share a label.
    DuplicateLabel {
        /// The shared label.
        label: String,
    },
    /// Two instructions share an id.
    DuplicateInstId {
        /// The shared id.
        id: InstId,
    },
    /// An instruction id is not below the function's allocation bound.
    InstIdOutOfBounds {
        /// The out-of-bounds id.
        id: InstId,
    },
    /// A branch appears before the end of its block.
    BranchNotLast {
        /// Block holding the misplaced branch.
        block: BlockId,
        /// The misplaced branch.
        id: InstId,
    },
    /// A branch targets a block id that does not exist.
    TargetOutOfRange {
        /// Block holding the dangling branch.
        block: BlockId,
        /// The dangling branch.
        id: InstId,
    },
    /// Control can fall through past the final block.
    FallsOffEnd {
        /// The final block.
        block: BlockId,
    },
    /// An operand has the wrong register class.
    OperandClass {
        /// Block holding the offending instruction.
        block: BlockId,
        /// The offending instruction.
        id: InstId,
        /// Which operand violates which class constraint.
        detail: String,
    },
    /// A memory reference names a symbol that does not exist.
    SymbolOutOfRange {
        /// Block holding the offending instruction.
        block: BlockId,
        /// The offending instruction.
        id: InstId,
    },
}

impl fmt::Display for VerifyFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyFunctionError::Empty => write!(f, "function has no blocks"),
            VerifyFunctionError::DuplicateLabel { label } => {
                write!(f, "duplicate block label {label:?}")
            }
            VerifyFunctionError::DuplicateInstId { id } => {
                write!(f, "duplicate instruction id {id}")
            }
            VerifyFunctionError::InstIdOutOfBounds { id } => {
                write!(f, "instruction id {id} is outside the allocation bound")
            }
            VerifyFunctionError::BranchNotLast { block, id } => {
                write!(f, "branch {id} is not the last instruction of {block}")
            }
            VerifyFunctionError::TargetOutOfRange { block, id } => {
                write!(f, "branch {id} in {block} targets a nonexistent block")
            }
            VerifyFunctionError::FallsOffEnd { block } => {
                write!(f, "control falls through past final block {block}")
            }
            VerifyFunctionError::OperandClass { block, id, detail } => {
                write!(f, "operand class violation at {id} in {block}: {detail}")
            }
            VerifyFunctionError::SymbolOutOfRange { block, id } => {
                write!(
                    f,
                    "memory reference at {id} in {block} names a nonexistent symbol"
                )
            }
        }
    }
}

impl Error for VerifyFunctionError {}

impl Function {
    /// Checks the structural invariants every pass relies on: blocks end
    /// in at most one branch and only as the final instruction, branch
    /// targets exist, labels and instruction ids are unique, operand
    /// register classes match, and control cannot fall off the end of the
    /// function.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`VerifyFunctionError`].
    pub fn verify(&self) -> Result<(), VerifyFunctionError> {
        if self.num_blocks() == 0 {
            return Err(VerifyFunctionError::Empty);
        }

        let mut labels = HashSet::new();
        let mut ids = HashSet::new();
        let num_blocks = self.num_blocks();
        let num_syms = self.symbols().count();
        let bound = self.inst_id_bound();

        for (bid, block) in self.blocks() {
            if !labels.insert(block.label().to_owned()) {
                return Err(VerifyFunctionError::DuplicateLabel {
                    label: block.label().to_owned(),
                });
            }
            let len = block.len();
            for (pos, inst) in block.insts().enumerate() {
                if !ids.insert(inst.id) {
                    return Err(VerifyFunctionError::DuplicateInstId { id: inst.id });
                }
                if inst.id.index() >= bound {
                    return Err(VerifyFunctionError::InstIdOutOfBounds { id: inst.id });
                }
                if inst.op.is_branch() && pos + 1 != len {
                    return Err(VerifyFunctionError::BranchNotLast {
                        block: bid,
                        id: inst.id,
                    });
                }
                if let Some(t) = inst.op.branch_target() {
                    if t.index() >= num_blocks {
                        return Err(VerifyFunctionError::TargetOutOfRange {
                            block: bid,
                            id: inst.id,
                        });
                    }
                }
                if let Some((mem, _)) = inst.op.mem_access() {
                    if let Some(sym) = mem.sym {
                        if sym.index() >= num_syms {
                            return Err(VerifyFunctionError::SymbolOutOfRange {
                                block: bid,
                                id: inst.id,
                            });
                        }
                    }
                }
                if let Err(detail) = check_operand_classes(&inst.op) {
                    return Err(VerifyFunctionError::OperandClass {
                        block: bid,
                        id: inst.id,
                        detail,
                    });
                }
            }
        }

        let last = BlockId::new(num_blocks as u32 - 1);
        if self.block(last).falls_through() {
            return Err(VerifyFunctionError::FallsOffEnd { block: last });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Inst;
    use crate::op::{CondBit, Op};
    use crate::reg::Reg;

    fn ret_function() -> Function {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(id, Op::Ret));
        f
    }

    #[test]
    fn minimal_function_verifies() {
        assert_eq!(ret_function().verify(), Ok(()));
    }

    #[test]
    fn empty_function_rejected() {
        assert_eq!(Function::new("t").verify(), Err(VerifyFunctionError::Empty));
    }

    #[test]
    fn branch_must_be_last() {
        let mut f = ret_function();
        let b = BlockId::new(0);
        let id = f.fresh_inst_id();
        // Insert an unconditional branch *before* the RET.
        f.block_mut(b)
            .insert(0, Inst::new(id, Op::Branch { target: b }));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::BranchNotLast { .. })
        ));
    }

    #[test]
    fn dangling_target_rejected() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id,
            Op::Branch {
                target: BlockId::new(9),
            },
        ));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn fallthrough_off_end_rejected() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id,
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 0,
            },
        ));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::FallsOffEnd { .. })
        ));
    }

    #[test]
    fn cond_branch_followed_by_code_rejected() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id0 = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id0,
            Op::BranchCond {
                target: b,
                cr: Reg::cr(0),
                bit: CondBit::Eq,
                when: true,
            },
        ));
        let id1 = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(id1, Op::Ret));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::BranchNotLast { .. })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id,
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 0,
            },
        ));
        f.block_mut(b).push(Inst::new(id, Op::Ret));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::DuplicateInstId { .. })
        ));
    }

    #[test]
    fn class_violation_rejected() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id,
            Op::Move {
                rt: Reg::gpr(0),
                rs: Reg::cr(0),
            },
        ));
        let id2 = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(id2, Op::Ret));
        assert!(matches!(
            f.verify(),
            Err(VerifyFunctionError::OperandClass { .. })
        ));
    }
}
