//! Textual printing of functions in the paper's pseudo-code style.
//!
//! The output round-trips through [`parse_function`](crate::parse_function)
//! and looks like Figure 2 of the paper:
//!
//! ```text
//! func minmax
//! CL.0:
//!     (I0)   L      r12=a(r31,4)
//!     (I1)   LU     r0,r31=a(r31,8)
//!     (I2)   C      cr7=r12,r0
//!     (I3)   BF     CL.4,cr7,0x2/gt
//! ```

use crate::block::BlockId;
use crate::function::Function;
use crate::op::Op;
use std::fmt;

impl Function {
    /// Formats one operation using this function's labels and symbols.
    pub fn op_to_string(&self, op: &Op) -> String {
        let label = |b: BlockId| self.block(b).label().to_owned();
        let sym = |mem: &crate::op::MemRef| match mem.sym {
            Some(s) => self.symbol_name(s).to_owned(),
            None => "*".to_owned(),
        };
        match op {
            Op::Load { rt, mem } => {
                format!("L      {rt}={}({},{})", sym(mem), mem.base, mem.disp)
            }
            Op::LoadUpdate { rt, mem } => {
                format!(
                    "LU     {rt},{}={}({},{})",
                    mem.base,
                    sym(mem),
                    mem.base,
                    mem.disp
                )
            }
            Op::Store { rs, mem } => {
                format!("ST     {rs}=>{}({},{})", sym(mem), mem.base, mem.disp)
            }
            Op::StoreUpdate { rs, mem } => {
                format!("STU    {rs}=>{}({},{})", sym(mem), mem.base, mem.disp)
            }
            Op::LoadImm { rt, imm } => format!("LI     {rt}={imm}"),
            Op::Move { rt, rs } => format!("LR     {rt}={rs}"),
            Op::Fx { op, rt, ra, rb } => {
                format!("{:<6} {rt}={ra},{rb}", op.mnemonic())
            }
            Op::FxImm { op, rt, ra, imm } => {
                format!("{:<6} {rt}={ra},{imm}", op.imm_mnemonic())
            }
            Op::Fp { op, rt, ra, rb } => {
                format!("{:<6} {rt}={ra},{rb}", op.mnemonic())
            }
            Op::Compare { crt, ra, rb } => format!("C      {crt}={ra},{rb}"),
            Op::CompareImm { crt, ra, imm } => format!("CI     {crt}={ra},{imm}"),
            Op::FpCompare { crt, ra, rb } => format!("FC     {crt}={ra},{rb}"),
            Op::BranchCond {
                target,
                cr,
                bit,
                when,
            } => {
                let mn = if *when { "BT" } else { "BF" };
                format!("{mn:<6} {},{cr},{bit}", label(*target))
            }
            Op::Branch { target } => format!("B      {}", label(*target)),
            Op::Ret => "RET".to_owned(),
            Op::Call { name, uses, defs } => {
                let list = |rs: &[crate::Reg]| {
                    rs.iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!("CALL   {name}({})->({})", list(uses), list(defs))
            }
            Op::Print { rs } => format!("PRINT  {rs}"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}", self.name())?;
        for (_, block) in self.blocks() {
            writeln!(f, "{}:", block.label())?;
            for inst in block.insts() {
                writeln!(
                    f,
                    "    ({:<5}) {}",
                    inst.id.to_string(),
                    self.op_to_string(&inst.op)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::op::CondBit;

    #[test]
    fn printed_form_matches_paper_style() {
        let mut b = FunctionBuilder::new("t");
        let r12 = b.gpr();
        let r31 = b.gpr();
        let cr7 = b.cr();
        let a = b.symbol("a");
        let e = b.block("CL.0");
        let out = b.block("CL.4");
        b.switch_to(e);
        b.load(r12, a, r31, 4);
        b.compare(cr7, r12, r12);
        b.branch_false(out, cr7, CondBit::Gt);
        b.switch_to(out);
        b.ret();
        let f = b.finish().expect("verifies");
        let text = f.to_string();
        assert!(text.contains("func t"), "{text}");
        assert!(text.contains("CL.0:"), "{text}");
        assert!(text.contains("L      r0=a(r1,4)"), "{text}");
        assert!(text.contains("BF     CL.4,cr0,0x2/gt"), "{text}");
        assert!(text.contains("RET"), "{text}");
    }
}
