//! Parsing of the textual assembly form produced by the printer.

use crate::block::{BlockId, Inst, InstId};
use crate::function::Function;
use crate::op::{CondBit, FpBinOp, FxBinOp, MemRef, Op};
use crate::reg::Reg;
use crate::verify::VerifyFunctionError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced by [`parse_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFunctionError {
    /// 1-based source line of the problem (0 when the problem is not tied
    /// to a single line, e.g. a post-parse verification failure).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseFunctionError {}

impl From<VerifyFunctionError> for ParseFunctionError {
    fn from(e: VerifyFunctionError) -> Self {
        ParseFunctionError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseFunctionError {
    ParseFunctionError {
        line,
        message: message.into(),
    }
}

/// Parses the textual assembly form (see the [`print`](crate::Function)
/// docs for the grammar by example). Instruction id annotations `(I7)` are
/// honoured when present and assigned sequentially otherwise, so paper
/// listings can be transcribed with their original numbering.
///
/// # Errors
///
/// Returns a [`ParseFunctionError`] carrying the offending line, or a
/// line-0 error when the parsed function fails [`Function::verify`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = gis_ir::parse_function(
///     "func t\n\
///      CL.0:\n\
///      L r1=a(r2,4)\n\
///      RET\n",
/// )?;
/// assert_eq!(f.num_insts(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_function(text: &str) -> Result<Function, ParseFunctionError> {
    let mut f = Function::new("main");
    let mut labels: HashMap<String, BlockId> = HashMap::new();

    // Pass 1: function name and block labels (in order).
    for (lno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("func ") {
            f = Function::new(name.trim());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() {
                return Err(err(lno + 1, "empty block label"));
            }
            if labels.contains_key(label) {
                return Err(err(lno + 1, format!("duplicate block label {label:?}")));
            }
            let id = f.add_block(label);
            labels.insert(label.to_owned(), id);
        }
    }

    // Pass 2: instructions.
    let mut current: Option<BlockId> = None;
    let mut next_id: u32 = 0;
    for (lno, raw) in text.lines().enumerate() {
        let lno = lno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with("func ") {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            current = Some(labels[label.trim()]);
            continue;
        }
        let block = current.ok_or_else(|| err(lno, "instruction before any block label"))?;

        let (id, rest) = parse_id_prefix(line, lno, &mut next_id)?;
        let op = parse_op(rest, lno, &mut f, &labels)?;
        f.block_mut(block).push(Inst::new(id, op));
    }

    f.recompute_allocators();
    f.verify()?;
    Ok(f)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn parse_id_prefix<'a>(
    line: &'a str,
    lno: usize,
    next_id: &mut u32,
) -> Result<(InstId, &'a str), ParseFunctionError> {
    if let Some(rest) = line.strip_prefix('(') {
        let close = rest
            .find(')')
            .ok_or_else(|| err(lno, "unclosed instruction id"))?;
        let tag = rest[..close].trim();
        let n: u32 = tag
            .strip_prefix('I')
            .and_then(|d| d.trim().parse().ok())
            .ok_or_else(|| err(lno, format!("bad instruction id {tag:?}")))?;
        *next_id = (*next_id).max(n + 1);
        Ok((InstId::new(n), rest[close + 1..].trim_start()))
    } else {
        let id = InstId::new(*next_id);
        *next_id += 1;
        Ok((id, line))
    }
}

fn parse_reg(s: &str, lno: usize) -> Result<Reg, ParseFunctionError> {
    let s = s.trim();
    let (ctor, digits): (fn(u32) -> Reg, &str) = if let Some(d) = s.strip_prefix("cr") {
        (Reg::cr, d)
    } else if let Some(d) = s.strip_prefix('r') {
        (Reg::gpr, d)
    } else if let Some(d) = s.strip_prefix('f') {
        (Reg::fpr, d)
    } else {
        return Err(err(lno, format!("expected register, got {s:?}")));
    };
    let n: u32 = digits
        .parse()
        .map_err(|_| err(lno, format!("bad register index in {s:?}")))?;
    Ok(ctor(n))
}

fn parse_imm(s: &str, lno: usize) -> Result<i64, ParseFunctionError> {
    s.trim()
        .parse()
        .map_err(|_| err(lno, format!("expected integer, got {s:?}")))
}

/// Parses `sym(base,disp)`; `*` stands for "no symbol".
fn parse_mem(s: &str, lno: usize, f: &mut Function) -> Result<MemRef, ParseFunctionError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| err(lno, format!("expected mem ref, got {s:?}")))?;
    let close = s
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(lno, format!("unclosed mem ref in {s:?}")))?;
    let sym_name = s[..open].trim();
    let inner = &s[open + 1..close];
    let (base_s, disp_s) = inner
        .split_once(',')
        .ok_or_else(|| err(lno, format!("mem ref needs base,disp: {s:?}")))?;
    let base = parse_reg(base_s, lno)?;
    let disp = parse_imm(disp_s, lno)?;
    let sym = if sym_name == "*" || sym_name.is_empty() {
        None
    } else {
        Some(f.add_symbol(sym_name))
    };
    Ok(MemRef { sym, base, disp })
}

fn parse_cond_bit(s: &str, lno: usize) -> Result<CondBit, ParseFunctionError> {
    let s = s.trim();
    let name = s.rsplit('/').next().unwrap_or(s);
    match name {
        "lt" => Ok(CondBit::Lt),
        "gt" => Ok(CondBit::Gt),
        "eq" => Ok(CondBit::Eq),
        _ => Err(err(lno, format!("bad condition bit {s:?}"))),
    }
}

fn split2<'a>(
    s: &'a str,
    sep: char,
    lno: usize,
    what: &str,
) -> Result<(&'a str, &'a str), ParseFunctionError> {
    s.split_once(sep)
        .ok_or_else(|| err(lno, format!("malformed {what}: {s:?}")))
}

fn fx_binop(mn: &str) -> Option<(FxBinOp, bool)> {
    let table = [
        ("A", FxBinOp::Add),
        ("S", FxBinOp::Sub),
        ("MUL", FxBinOp::Mul),
        ("DIV", FxBinOp::Div),
        ("AND", FxBinOp::And),
        ("OR", FxBinOp::Or),
        ("XOR", FxBinOp::Xor),
        ("SLL", FxBinOp::Sll),
        ("SRL", FxBinOp::Srl),
        ("SRA", FxBinOp::Sra),
    ];
    for (name, op) in table {
        if mn == name {
            return Some((op, false));
        }
        if let Some(stripped) = mn.strip_suffix('I') {
            if stripped == name {
                return Some((op, true));
            }
        }
    }
    None
}

fn parse_op(
    line: &str,
    lno: usize,
    f: &mut Function,
    labels: &HashMap<String, BlockId>,
) -> Result<Op, ParseFunctionError> {
    let (mn, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let lookup = |label: &str| -> Result<BlockId, ParseFunctionError> {
        labels
            .get(label.trim())
            .copied()
            .ok_or_else(|| err(lno, format!("unknown label {label:?}")))
    };
    match mn {
        "L" => {
            let (rt, mem) = split2(rest, '=', lno, "load")?;
            Ok(Op::Load {
                rt: parse_reg(rt, lno)?,
                mem: parse_mem(mem, lno, f)?,
            })
        }
        "LU" => {
            let (lhs, mem) = split2(rest, '=', lno, "load-update")?;
            let (rt, base) = split2(lhs, ',', lno, "load-update targets")?;
            let rt = parse_reg(rt, lno)?;
            let base = parse_reg(base, lno)?;
            let mem = parse_mem(mem, lno, f)?;
            if mem.base != base {
                return Err(err(
                    lno,
                    "LU update register must equal the mem base register",
                ));
            }
            Ok(Op::LoadUpdate { rt, mem })
        }
        "ST" | "STU" => {
            let (rs, mem) = rest
                .split_once("=>")
                .ok_or_else(|| err(lno, format!("malformed store: {rest:?}")))?;
            let rs = parse_reg(rs, lno)?;
            let mem = parse_mem(mem, lno, f)?;
            if mn == "ST" {
                Ok(Op::Store { rs, mem })
            } else {
                Ok(Op::StoreUpdate { rs, mem })
            }
        }
        "LI" => {
            let (rt, imm) = split2(rest, '=', lno, "load-immediate")?;
            Ok(Op::LoadImm {
                rt: parse_reg(rt, lno)?,
                imm: parse_imm(imm, lno)?,
            })
        }
        "LR" => {
            let (rt, rs) = split2(rest, '=', lno, "move")?;
            Ok(Op::Move {
                rt: parse_reg(rt, lno)?,
                rs: parse_reg(rs, lno)?,
            })
        }
        "C" => {
            let (crt, ops) = split2(rest, '=', lno, "compare")?;
            let (ra, rb) = split2(ops, ',', lno, "compare operands")?;
            Ok(Op::Compare {
                crt: parse_reg(crt, lno)?,
                ra: parse_reg(ra, lno)?,
                rb: parse_reg(rb, lno)?,
            })
        }
        "CI" => {
            let (crt, ops) = split2(rest, '=', lno, "compare-immediate")?;
            let (ra, imm) = split2(ops, ',', lno, "compare operands")?;
            Ok(Op::CompareImm {
                crt: parse_reg(crt, lno)?,
                ra: parse_reg(ra, lno)?,
                imm: parse_imm(imm, lno)?,
            })
        }
        "FC" => {
            let (crt, ops) = split2(rest, '=', lno, "fp compare")?;
            let (ra, rb) = split2(ops, ',', lno, "fp compare operands")?;
            Ok(Op::FpCompare {
                crt: parse_reg(crt, lno)?,
                ra: parse_reg(ra, lno)?,
                rb: parse_reg(rb, lno)?,
            })
        }
        "FA" | "FS" | "FM" | "FD" => {
            let op = match mn {
                "FA" => FpBinOp::Add,
                "FS" => FpBinOp::Sub,
                "FM" => FpBinOp::Mul,
                _ => FpBinOp::Div,
            };
            let (rt, ops) = split2(rest, '=', lno, "fp op")?;
            let (ra, rb) = split2(ops, ',', lno, "fp operands")?;
            Ok(Op::Fp {
                op,
                rt: parse_reg(rt, lno)?,
                ra: parse_reg(ra, lno)?,
                rb: parse_reg(rb, lno)?,
            })
        }
        "BT" | "BF" => {
            let mut parts = rest.splitn(3, ',');
            let target = parts
                .next()
                .ok_or_else(|| err(lno, "branch needs a target"))?;
            let cr = parts
                .next()
                .ok_or_else(|| err(lno, "branch needs a condition register"))?;
            let bit = parts
                .next()
                .ok_or_else(|| err(lno, "branch needs a condition bit"))?;
            Ok(Op::BranchCond {
                target: lookup(target)?,
                cr: parse_reg(cr, lno)?,
                bit: parse_cond_bit(bit, lno)?,
                when: mn == "BT",
            })
        }
        "B" => Ok(Op::Branch {
            target: lookup(rest)?,
        }),
        "RET" => Ok(Op::Ret),
        "PRINT" => Ok(Op::Print {
            rs: parse_reg(rest, lno)?,
        }),
        "CALL" => {
            // CALL name(u1,u2)->(d1,d2)
            let open = rest.find('(').ok_or_else(|| err(lno, "malformed call"))?;
            let name = rest[..open].trim().to_owned();
            let (uses_s, defs_s) = rest[open..]
                .split_once("->")
                .ok_or_else(|| err(lno, "call needs (uses)->(defs)"))?;
            let parse_list = |s: &str| -> Result<Vec<Reg>, ParseFunctionError> {
                let inner = s
                    .trim()
                    .trim_start_matches('(')
                    .trim_end_matches(')')
                    .trim();
                if inner.is_empty() {
                    return Ok(Vec::new());
                }
                inner.split(',').map(|r| parse_reg(r, lno)).collect()
            };
            Ok(Op::Call {
                name,
                uses: parse_list(uses_s)?,
                defs: parse_list(defs_s)?,
            })
        }
        _ => {
            if let Some((op, is_imm)) = fx_binop(mn) {
                let (rt, ops) = split2(rest, '=', lno, "fx op")?;
                let (ra, second) = split2(ops, ',', lno, "fx operands")?;
                let rt = parse_reg(rt, lno)?;
                let ra = parse_reg(ra, lno)?;
                if is_imm {
                    Ok(Op::FxImm {
                        op,
                        rt,
                        ra,
                        imm: parse_imm(second, lno)?,
                    })
                } else {
                    Ok(Op::Fx {
                        op,
                        rt,
                        ra,
                        rb: parse_reg(second, lno)?,
                    })
                }
            } else {
                Err(err(lno, format!("unknown mnemonic {mn:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    const LOOP: &str = "\
func minmax_loop
CL.0:
    (I1)  L      r12=a(r31,4)
    (I2)  LU     r0,r31=a(r31,8)
    (I3)  C      cr7=r12,r0
    (I4)  BF     CL.4,cr7,0x2/gt
CL.4:
    (I20) BT     CL.0,cr4,0x1/lt
CL.end:
    RET
";

    #[test]
    fn parses_paper_style_listing() {
        let f = parse_function(LOOP).expect("parses");
        assert_eq!(f.name(), "minmax_loop");
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_insts(), 6);
        let (bid, inst) = f.insts().nth(1).unwrap();
        assert_eq!(bid, BlockId::new(0));
        assert_eq!(inst.id, InstId::new(2));
        assert_eq!(inst.op.class(), OpClass::Load);
        assert!(inst.op.has_tied_base());
    }

    #[test]
    fn round_trips_through_printer() {
        let f = parse_function(LOOP).expect("parses");
        let printed = f.to_string();
        let f2 = parse_function(&printed).expect("reparses");
        assert_eq!(f2.num_blocks(), f.num_blocks());
        let ops1: Vec<_> = f.insts().map(|(_, i)| (i.id, i.op.clone())).collect();
        let ops2: Vec<_> = f2.insts().map(|(_, i)| (i.id, i.op.clone())).collect();
        assert_eq!(ops1, ops2);
    }

    #[test]
    fn rejects_unknown_label() {
        let text = "CL.0:\n    B CL.nope\n";
        let e = parse_function(text).unwrap_err();
        assert!(e.message.contains("unknown label"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_inconsistent_lu() {
        let text = "CL.0:\n    LU r0,r5=a(r31,8)\n    RET\n";
        let e = parse_function(text).unwrap_err();
        assert!(e.message.contains("update register"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "func t\n\nCL.0: ; entry\n  LI r1=5  # five\n  PRINT r1\n  RET\n";
        let f = parse_function(text).expect("parses");
        assert_eq!(f.num_insts(), 3);
    }

    #[test]
    fn call_syntax() {
        let text = "CL.0:\n  CALL foo(r1,r2)->(r3)\n  RET\n";
        let f = parse_function(text).expect("parses");
        let (_, inst) = f.insts().next().unwrap();
        match &inst.op {
            Op::Call { name, uses, defs } => {
                assert_eq!(name, "foo");
                assert_eq!(uses.len(), 2);
                assert_eq!(defs, &vec![Reg::gpr(3)]);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn verify_failures_surface_as_parse_errors() {
        // Falls through off the end.
        let text = "CL.0:\n  LI r1=5\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("falls through"), "{e}");
    }
}
