//! Basic blocks and instructions.

use crate::op::Op;
use std::fmt;

/// Identifies a basic block within its [`Function`](crate::Function).
///
/// Block ids are dense indices into the function's layout-ordered block
/// vector, so they double as array indices in the analysis crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BL{}", self.0)
    }
}

/// Identifies an instruction within its [`Function`](crate::Function).
///
/// Instruction ids are assigned once and survive scheduling: when the
/// global scheduler moves an instruction between blocks its id does not
/// change, which is how tests pin down motions like "I18 moved into BL1".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(u32);

impl InstId {
    /// Creates an instruction id from a raw index.
    pub fn new(index: u32) -> Self {
        InstId(index)
    }

    /// The raw index (dense within a function; suitable as a vector index).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// An instruction: a stable id plus its [`Op`].
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Stable identity (see [`InstId`]).
    pub id: InstId,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// Creates an instruction.
    pub fn new(id: InstId, op: Op) -> Self {
        Inst { id, op }
    }
}

/// A basic block: a label and a straight-line run of instructions.
///
/// Control transfers appear only as the final instruction (an unconditional
/// branch or return) or as a conditional branch that is last with the next
/// layout block as its fall-through; [`Function::verify`](crate::Function::verify)
/// enforces this shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    label: String,
    insts: Vec<Inst>,
}

impl Block {
    /// Creates an empty block with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Block {
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// The block's label (used by the printer and parser; unique within a
    /// function).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Renames the block. Transformation passes that clone blocks (loop
    /// unrolling, rotation) use this to keep labels unique; callers must
    /// re-[`verify`](crate::Function::verify) afterwards.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The block's instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instruction list.
    ///
    /// Transformations that reorder or move instructions use this; they are
    /// expected to re-[`verify`](crate::Function::verify) afterwards.
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The final instruction, if any.
    pub fn last(&self) -> Option<&Inst> {
        self.insts.last()
    }

    /// Whether control can fall through past the end of this block to the
    /// next block in layout order.
    pub fn falls_through(&self) -> bool {
        match self.insts.last() {
            Some(inst) => !inst.op.is_block_end(),
            None => true,
        }
    }

    /// Removes and returns the instruction with the given id, or `None` if
    /// it is not in this block.
    pub fn remove(&mut self, id: InstId) -> Option<Inst> {
        let pos = self.insts.iter().position(|i| i.id == id)?;
        Some(self.insts.remove(pos))
    }

    /// Finds the position of an instruction by id.
    pub fn position(&self, id: InstId) -> Option<usize> {
        self.insts.iter().position(|i| i.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    #[test]
    fn fallthrough_rules() {
        let mut b = Block::new("CL.0");
        assert!(b.falls_through(), "empty blocks fall through");
        b.push(Inst::new(
            InstId::new(0),
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 1,
            },
        ));
        assert!(b.falls_through());
        b.push(Inst::new(InstId::new(1), Op::Ret));
        assert!(!b.falls_through());
    }

    #[test]
    fn remove_by_id() {
        let mut b = Block::new("x");
        b.push(Inst::new(
            InstId::new(4),
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 1,
            },
        ));
        b.push(Inst::new(InstId::new(9), Op::Ret));
        let removed = b.remove(InstId::new(4)).expect("present");
        assert_eq!(removed.id, InstId::new(4));
        assert_eq!(b.len(), 1);
        assert!(b.remove(InstId::new(4)).is_none());
    }
}
