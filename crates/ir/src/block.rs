//! Basic blocks and instructions.
//!
//! Since the arena refactor a block stores no instruction payloads: it is
//! a label plus an ordered list of [`InstIdx`] arena indices. The public
//! way to read a block is [`Function::block`](crate::Function::block)
//! (returning a [`BlockRef`](crate::BlockRef) view) and the public way to
//! mutate one is [`Function::block_mut`](crate::Function::block_mut)
//! (returning a [`BlockMut`](crate::BlockMut)).

use crate::arena::InstIdx;
use crate::op::Op;
use std::fmt;

/// Identifies a basic block within its [`Function`](crate::Function).
///
/// Block ids are dense indices into the function's layout-ordered block
/// vector, so they double as array indices in the analysis crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BL{}", self.0)
    }
}

/// Identifies an instruction within its [`Function`](crate::Function).
///
/// Instruction ids are assigned once and survive scheduling: when the
/// global scheduler moves an instruction between blocks its id does not
/// change, which is how tests pin down motions like "I18 moved into BL1".
/// Ids are dense (suitable for dense side tables) but *positional lookup*
/// by id costs a scan; the arena index ([`InstIdx`]) is the O(1) handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(u32);

impl InstId {
    /// Creates an instruction id from a raw index.
    pub fn new(index: u32) -> Self {
        InstId(index)
    }

    /// The raw index (dense within a function; suitable as a vector index).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// An instruction: a stable id plus its [`Op`].
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Stable identity (see [`InstId`]).
    pub id: InstId,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// Creates an instruction.
    pub fn new(id: InstId, op: Op) -> Self {
        Inst { id, op }
    }
}

/// Block storage: a label and the ordered arena indices of the block's
/// instructions. Payloads live in the function's arena; moving an
/// instruction between blocks moves one `InstIdx`, never an [`Op`].
#[derive(Debug, Clone)]
pub(crate) struct BlockData {
    pub(crate) label: String,
    pub(crate) list: Vec<InstIdx>,
}

impl BlockData {
    pub(crate) fn new(label: impl Into<String>) -> Self {
        BlockData {
            label: label.into(),
            list: Vec::new(),
        }
    }
}
