//! Region-scoped views over a function.
//!
//! The global scheduler works one region at a time (§4 of the paper): a
//! region is a set of blocks, and every motion it performs stays inside
//! that set. A [`RegionView`] is the read-only lens for that shape — a
//! borrowed block-set over the arena, costing one `Vec` of block ids to
//! build and nothing per instruction.
//!
//! For *mutable* per-worker scratch, the companion primitive is
//! [`Function::snapshot`]: a copy-on-write snapshot whose cost is
//! reference-count bumps, which a worker mutates freely and the merge
//! adopts back block-by-block via
//! [`Function::adopt_block_from`].

use crate::block::{BlockId, Inst};
use crate::function::{BlockRef, Function};

/// A read-only view of a set of blocks (a scheduling region) within one
/// function.
///
/// ```
/// use gis_ir::{parse_function, RegionView};
///
/// let f = parse_function(
///     "func t\ne:\n LI r0=1\n BT tail,cr0,0x1/lt\nmid:\n AI r0=r0,1\ntail:\n RET\n",
/// )
/// .unwrap();
/// let blocks: Vec<_> = f.block_ids().take(2).collect();
/// let region = RegionView::new(&f, blocks);
/// assert_eq!(region.num_blocks(), 2);
/// assert_eq!(region.num_insts(), 3, "tail's RET is outside the region");
/// let ids: Vec<String> = region.insts().map(|(_, i)| i.id.to_string()).collect();
/// assert_eq!(ids, ["I0", "I1", "I2"]);
/// ```
pub struct RegionView<'a> {
    f: &'a Function,
    blocks: Vec<BlockId>,
}

impl<'a> RegionView<'a> {
    /// Creates a view over `blocks` of `f`, in the given order (regions
    /// enumerate their blocks in layout order; the view preserves
    /// whatever order the caller fixes).
    ///
    /// # Panics
    ///
    /// Panics if any block id is out of range for `f`.
    pub fn new(f: &'a Function, blocks: Vec<BlockId>) -> Self {
        for b in &blocks {
            assert!(b.index() < f.num_blocks(), "region block out of range");
        }
        RegionView { f, blocks }
    }

    /// The function this view borrows.
    pub fn function(&self) -> &'a Function {
        self.f
    }

    /// The block ids in the region, in view order.
    pub fn block_ids(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Whether `b` is one of the region's blocks.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Number of blocks in the region.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total instructions across the region's blocks. This is the size
    /// the §6 scheduling gates cap, and the weight the parallel
    /// partitioner balances work units by.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|&b| self.f.block(b).len()).sum()
    }

    /// The region's blocks as [`BlockRef`] views, in view order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockRef<'a>> + '_ {
        self.blocks.iter().map(|&b| self.f.block(b))
    }

    /// Every instruction in the region with its containing block, in
    /// view order then list order.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &'a Inst)> + '_ {
        self.blocks
            .iter()
            .flat_map(|&b| self.f.block(b).insts().map(move |i| (b, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_function;

    #[test]
    fn empty_region_is_fine() {
        let f = parse_function("func t\ne:\n RET\n").unwrap();
        let v = RegionView::new(&f, Vec::new());
        assert_eq!(v.num_blocks(), 0);
        assert_eq!(v.num_insts(), 0);
        assert_eq!(v.insts().count(), 0);
        assert!(!v.contains(f.entry()));
    }

    #[test]
    fn single_instruction_region() {
        let f = parse_function("func t\ne:\n RET\n").unwrap();
        let v = RegionView::new(&f, vec![f.entry()]);
        assert_eq!(v.num_insts(), 1);
        let (b, inst) = v.insts().next().unwrap();
        assert_eq!(b, f.entry());
        assert!(inst.op.is_block_end());
    }
}
