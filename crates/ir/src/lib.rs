//! RS/6000-flavoured RISC intermediate representation.
//!
//! This crate provides the program representation consumed by every other
//! crate in the workspace: a function is a layout-ordered list of basic
//! blocks holding instructions over an unbounded set of *symbolic*
//! registers, exactly the level at which Bernstein & Rodeh's global
//! instruction scheduler operates (after machine-independent optimization,
//! before register allocation).
//!
//! The instruction set mirrors the pseudo-code of Figure 2 of the paper:
//! loads and stores (including *load with update*), fixed- and
//! floating-point arithmetic, compares that set a condition-register field,
//! and branches that test a single condition bit.
//!
//! # Example
//!
//! ```
//! use gis_ir::{Function, FunctionBuilder, CondBit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("clamp_neg");
//! let r_in = b.gpr();
//! let cr = b.cr();
//!
//! let entry = b.block("entry");
//! let neg = b.block("neg");
//! let done = b.block("done");
//!
//! b.switch_to(entry);
//! b.compare_imm(cr, r_in, 0);
//! b.branch_false(done, cr, CondBit::Lt); // skip `neg` unless r_in < 0
//!
//! b.switch_to(neg);
//! b.load_imm(r_in, 0);
//!
//! b.switch_to(done);
//! b.ret();
//!
//! let f: Function = b.finish()?;
//! assert_eq!(f.num_blocks(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arena;
mod bitset;
mod block;
mod builder;
pub mod canon;
mod function;
pub mod hash;
mod op;
mod parse;
mod print;
mod reg;
mod verify;
mod view;

pub use arena::InstIdx;
pub use bitset::{BlockSet, DenseBitSet, RegSet};
pub use block::{BlockId, Inst, InstId};
pub use builder::FunctionBuilder;
pub use canon::{canon_region, from_canonical_bytes, hash_region, to_canonical_bytes, CanonError};
pub use function::{BlockMut, BlockRef, Function, Insts, SymId};
pub use op::{CondBit, FpBinOp, FxBinOp, MemRef, Op, OpClass};
pub use parse::{parse_function, ParseFunctionError};
pub use reg::{Reg, RegClass};
pub use verify::VerifyFunctionError;
pub use view::RegionView;
