//! Dense bit sets for the scheduler's hot paths.
//!
//! The global scheduler spends most of its time asking membership
//! questions about two dense key spaces: symbolic registers
//! ([`Reg`] indices are allocated contiguously per class by
//! [`FunctionBuilder`](crate::FunctionBuilder)) and basic blocks
//! ([`BlockId`]s are dense by construction). `HashSet` answers those
//! questions in tens of nanoseconds with allocation churn;
//! a word-packed bit set answers them in one shift and mask.
//!
//! [`DenseBitSet`] is the raw `u64`-word set over `usize` keys;
//! [`RegSet`] and [`BlockSet`] are thin typed wrappers. All three
//! iterate in ascending key order ([`RegSet`] in `(class, index)`
//! order, matching [`Reg`]'s `Ord`), so every consumer that prints or
//! compares set contents is deterministic without sorting.

use crate::block::BlockId;
use crate::reg::{Reg, RegClass};
use std::fmt;

const WORD_BITS: usize = 64;

/// A growable set of small unsigned integers, one bit per key.
///
/// Operations never shrink the backing storage; `clear` keeps capacity
/// so a scratch set can be reused across iterations without
/// reallocating. Equality is logical (trailing zero words are
/// ignored), so sets that grew along different paths still compare
/// equal when they hold the same keys.
///
/// ```
/// use gis_ir::DenseBitSet;
///
/// let mut s = DenseBitSet::new();
/// s.insert(3);
/// s.insert(200);
/// assert!(s.contains(3) && !s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 200]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DenseBitSet { words: Vec::new() }
    }

    /// Creates an empty set with room for keys `0..capacity` without
    /// further allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
        }
    }

    /// Inserts `key`, growing storage as needed. Returns `true` if the
    /// key was not already present.
    pub fn insert(&mut self, key: usize) -> bool {
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: usize) -> bool {
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, key: usize) -> bool {
        let (w, b) = (key / WORD_BITS, key % WORD_BITS);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Removes every key, keeping the backing storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unions `other` into `self`. Returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            let next = *dst | src;
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }

    /// Removes every key of `other` from `self`.
    pub fn subtract(&mut self, other: &DenseBitSet) {
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            *dst &= !src;
        }
    }

    /// Unions `other \ except` into `self` (one fused pass — the
    /// dataflow inner loop `in ∪= out − def`). Returns `true` if
    /// `self` changed.
    pub fn union_with_except(&mut self, other: &DenseBitSet, except: &DenseBitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (wi, (dst, &src)) in self.words.iter_mut().zip(&other.words).enumerate() {
            let minus = except.words.get(wi).copied().unwrap_or(0);
            let next = *dst | (src & !minus);
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }

    /// Iterates the keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * WORD_BITS + b)
            })
        })
    }
}

impl PartialEq for DenseBitSet {
    fn eq(&self, other: &Self) -> bool {
        let shared = self.words.len().min(other.words.len());
        self.words[..shared] == other.words[..shared]
            && self.words[shared..].iter().all(|&w| w == 0)
            && other.words[shared..].iter().all(|&w| w == 0)
    }
}

impl Eq for DenseBitSet {}

/// A set of symbolic [`Reg`]s, one dense bit set per register class.
///
/// Iteration yields GPRs, then FPRs, then CR fields, each in ascending
/// index order — the same total order as [`Reg`]'s `Ord` — so callers
/// can print or diff live sets without sorting.
///
/// ```
/// use gis_ir::{Reg, RegSet};
///
/// let mut live = RegSet::new();
/// live.insert(Reg::cr(0));
/// live.insert(Reg::gpr(3));
/// assert!(live.contains(Reg::gpr(3)));
/// assert_eq!(live.iter().collect::<Vec<_>>(), vec![Reg::gpr(3), Reg::cr(0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegSet {
    classes: [DenseBitSet; 3],
}

fn class_slot(class: RegClass) -> usize {
    match class {
        RegClass::Gpr => 0,
        RegClass::Fpr => 1,
        RegClass::Cr => 2,
    }
}

const CLASS_ORDER: [RegClass; 3] = [RegClass::Gpr, RegClass::Fpr, RegClass::Cr];

impl RegSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RegSet::default()
    }

    /// Inserts `r`. Returns `true` if it was not already present.
    pub fn insert(&mut self, r: Reg) -> bool {
        self.classes[class_slot(r.class())].insert(r.index() as usize)
    }

    /// Removes `r`. Returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        self.classes[class_slot(r.class())].remove(r.index() as usize)
    }

    /// Whether `r` is in the set.
    pub fn contains(&self, r: Reg) -> bool {
        self.classes[class_slot(r.class())].contains(r.index() as usize)
    }

    /// Removes every register, keeping the backing storage.
    pub fn clear(&mut self) {
        for c in &mut self.classes {
            c.clear();
        }
    }

    /// Whether the set holds no registers.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.is_empty())
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// Unions `other` into `self`. Returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (dst, src) in self.classes.iter_mut().zip(&other.classes) {
            changed |= dst.union_with(src);
        }
        changed
    }

    /// Removes every register of `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        for (dst, src) in self.classes.iter_mut().zip(&other.classes) {
            dst.subtract(src);
        }
    }

    /// Unions `other \ except` into `self`. Returns `true` if `self`
    /// changed.
    pub fn union_with_except(&mut self, other: &RegSet, except: &RegSet) -> bool {
        let mut changed = false;
        for (slot, dst) in self.classes.iter_mut().enumerate() {
            changed |= dst.union_with_except(&other.classes[slot], &except.classes[slot]);
        }
        changed
    }

    /// Iterates the registers in `(class, index)` order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        CLASS_ORDER
            .iter()
            .enumerate()
            .flat_map(move |(slot, &class)| {
                self.classes[slot]
                    .iter()
                    .map(move |i| Reg::new(class, i as u32))
            })
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{r}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// A set of [`BlockId`]s over the function's dense block numbering.
///
/// ```
/// use gis_ir::BlockSet;
/// # use gis_ir::{Function, FunctionBuilder};
/// # let mut b = FunctionBuilder::new("f");
/// # let entry = b.block("entry");
/// # b.switch_to(entry);
/// # b.ret();
/// # let f: Function = b.finish().unwrap();
/// let mut seen = BlockSet::with_capacity(f.num_blocks());
/// let entry = f.blocks().next().unwrap().0;
/// assert!(seen.insert(entry));
/// assert!(!seen.insert(entry));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockSet {
    bits: DenseBitSet,
}

impl BlockSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BlockSet::default()
    }

    /// Creates an empty set with room for `num_blocks` blocks.
    pub fn with_capacity(num_blocks: usize) -> Self {
        BlockSet {
            bits: DenseBitSet::with_capacity(num_blocks),
        }
    }

    /// Inserts `b`. Returns `true` if it was not already present.
    pub fn insert(&mut self, b: BlockId) -> bool {
        self.bits.insert(b.index())
    }

    /// Removes `b`. Returns `true` if it was present.
    pub fn remove(&mut self, b: BlockId) -> bool {
        self.bits.remove(b.index())
    }

    /// Whether `b` is in the set.
    pub fn contains(&self, b: BlockId) -> bool {
        self.bits.contains(b.index())
    }

    /// Removes every block, keeping the backing storage.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Whether the set holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of blocks in the set.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Iterates the blocks in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.bits.iter().map(|i| BlockId::new(i as u32))
    }
}

impl FromIterator<BlockId> for BlockSet {
    fn from_iter<T: IntoIterator<Item = BlockId>>(iter: T) -> Self {
        let mut s = BlockSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(!s.contains(1) && !s.contains(1000));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.remove(9999));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn logical_equality_ignores_capacity() {
        let mut a = DenseBitSet::with_capacity(1024);
        let mut b = DenseBitSet::new();
        a.insert(5);
        b.insert(5);
        assert_eq!(a, b);
        b.insert(700);
        assert_ne!(a, b);
        b.remove(700);
        assert_eq!(a, b);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = DenseBitSet::new();
        a.insert(1);
        let mut b = DenseBitSet::new();
        b.insert(1);
        b.insert(130);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 130]);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseBitSet::new();
        s.insert(500);
        let words = s.words.len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words.len(), words);
    }

    #[test]
    fn regset_keys_classes_apart() {
        let mut s = RegSet::new();
        s.insert(Reg::gpr(4));
        assert!(!s.contains(Reg::fpr(4)));
        assert!(!s.contains(Reg::cr(4)));
        s.insert(Reg::fpr(4));
        s.insert(Reg::cr(4));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn regset_iterates_in_reg_order() {
        let mut s = RegSet::new();
        for r in [Reg::cr(0), Reg::fpr(9), Reg::gpr(2), Reg::gpr(1)] {
            s.insert(r);
        }
        let got: Vec<Reg> = s.iter().collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(got, vec![Reg::gpr(1), Reg::gpr(2), Reg::fpr(9), Reg::cr(0)]);
    }

    #[test]
    fn regset_display() {
        let mut s = RegSet::new();
        s.insert(Reg::gpr(1));
        s.insert(Reg::cr(0));
        assert_eq!(s.to_string(), "{r1, cr0}");
    }
}
