//! Ergonomic construction of [`Function`]s.

use crate::block::{BlockId, Inst, InstId};
use crate::function::{Function, SymId};
use crate::op::{CondBit, FpBinOp, FxBinOp, MemRef, Op};
use crate::reg::{Reg, RegClass};
use crate::verify::VerifyFunctionError;

/// Builds a [`Function`] block by block.
///
/// Blocks are declared up front (declaration order is layout order, and the
/// first declared block is the entry), then filled by switching the
/// insertion point. Every emit method returns the new instruction's
/// [`InstId`] so tests can track motions.
///
/// ```
/// use gis_ir::FunctionBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("answer");
/// let r = b.gpr();
/// let entry = b.block("entry");
/// b.switch_to(entry);
/// b.load_imm(r, 42);
/// b.print(r);
/// b.ret();
/// let f = b.finish()?;
/// assert_eq!(f.num_insts(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    current: Option<BlockId>,
}

impl FunctionBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            f: Function::new(name),
            current: None,
        }
    }

    /// Declares a block; the first declared block is the entry.
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        self.f.add_block(label)
    }

    /// Makes `id` the insertion point for subsequent emits.
    pub fn switch_to(&mut self, id: BlockId) {
        self.current = Some(id);
    }

    /// Allocates a fresh general purpose register.
    pub fn gpr(&mut self) -> Reg {
        self.f.fresh_reg(RegClass::Gpr)
    }

    /// Allocates a fresh floating point register.
    pub fn fpr(&mut self) -> Reg {
        self.f.fresh_reg(RegClass::Fpr)
    }

    /// Allocates a fresh condition register field.
    pub fn cr(&mut self) -> Reg {
        self.f.fresh_reg(RegClass::Cr)
    }

    /// Interns a memory symbol.
    pub fn symbol(&mut self, name: impl Into<String>) -> SymId {
        self.f.add_symbol(name)
    }

    /// Emits an arbitrary [`Op`] at the insertion point.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point has been selected with
    /// [`FunctionBuilder::switch_to`].
    pub fn emit(&mut self, op: Op) -> InstId {
        let block = self
            .current
            .expect("no current block; call switch_to first");
        let id = self.f.fresh_inst_id();
        self.f.block_mut(block).push(Inst::new(id, op));
        id
    }

    /// `L rt=sym(base,disp)`
    pub fn load(&mut self, rt: Reg, sym: SymId, base: Reg, disp: i64) -> InstId {
        self.emit(Op::Load {
            rt,
            mem: MemRef::sym(sym, base, disp),
        })
    }

    /// `LU rt,base=sym(base,disp)`
    pub fn load_update(&mut self, rt: Reg, sym: SymId, base: Reg, disp: i64) -> InstId {
        self.emit(Op::LoadUpdate {
            rt,
            mem: MemRef::sym(sym, base, disp),
        })
    }

    /// `ST rs=>sym(base,disp)`
    pub fn store(&mut self, rs: Reg, sym: SymId, base: Reg, disp: i64) -> InstId {
        self.emit(Op::Store {
            rs,
            mem: MemRef::sym(sym, base, disp),
        })
    }

    /// `LI rt=imm`
    pub fn load_imm(&mut self, rt: Reg, imm: i64) -> InstId {
        self.emit(Op::LoadImm { rt, imm })
    }

    /// `LR rt=rs`
    pub fn mov(&mut self, rt: Reg, rs: Reg) -> InstId {
        self.emit(Op::Move { rt, rs })
    }

    /// Fixed point register-register op, e.g. `A rt=ra,rb`.
    pub fn fx(&mut self, op: FxBinOp, rt: Reg, ra: Reg, rb: Reg) -> InstId {
        self.emit(Op::Fx { op, rt, ra, rb })
    }

    /// Fixed point register-immediate op, e.g. `AI rt=ra,imm`.
    pub fn fx_imm(&mut self, op: FxBinOp, rt: Reg, ra: Reg, imm: i64) -> InstId {
        self.emit(Op::FxImm { op, rt, ra, imm })
    }

    /// `AI rt=ra,imm` (the common case of [`FunctionBuilder::fx_imm`]).
    pub fn add_imm(&mut self, rt: Reg, ra: Reg, imm: i64) -> InstId {
        self.fx_imm(FxBinOp::Add, rt, ra, imm)
    }

    /// Floating point register-register op, e.g. `FA rt=ra,rb`.
    pub fn fp(&mut self, op: FpBinOp, rt: Reg, ra: Reg, rb: Reg) -> InstId {
        self.emit(Op::Fp { op, rt, ra, rb })
    }

    /// `C crt=ra,rb`
    pub fn compare(&mut self, crt: Reg, ra: Reg, rb: Reg) -> InstId {
        self.emit(Op::Compare { crt, ra, rb })
    }

    /// `CI crt=ra,imm`
    pub fn compare_imm(&mut self, crt: Reg, ra: Reg, imm: i64) -> InstId {
        self.emit(Op::CompareImm { crt, ra, imm })
    }

    /// `FC crt=ra,rb`
    pub fn fp_compare(&mut self, crt: Reg, ra: Reg, rb: Reg) -> InstId {
        self.emit(Op::FpCompare { crt, ra, rb })
    }

    /// `BT target,cr,bit` — branch when the bit is set.
    pub fn branch_true(&mut self, target: BlockId, cr: Reg, bit: CondBit) -> InstId {
        self.emit(Op::BranchCond {
            target,
            cr,
            bit,
            when: true,
        })
    }

    /// `BF target,cr,bit` — branch when the bit is clear.
    pub fn branch_false(&mut self, target: BlockId, cr: Reg, bit: CondBit) -> InstId {
        self.emit(Op::BranchCond {
            target,
            cr,
            bit,
            when: false,
        })
    }

    /// `B target`
    pub fn branch(&mut self, target: BlockId) -> InstId {
        self.emit(Op::Branch { target })
    }

    /// `RET`
    pub fn ret(&mut self) -> InstId {
        self.emit(Op::Ret)
    }

    /// `CALL name` with explicit use/def registers.
    pub fn call(&mut self, name: impl Into<String>, uses: Vec<Reg>, defs: Vec<Reg>) -> InstId {
        self.emit(Op::Call {
            name: name.into(),
            uses,
            defs,
        })
    }

    /// `PRINT rs`
    pub fn print(&mut self, rs: Reg) -> InstId {
        self.emit(Op::Print { rs })
    }

    /// Finishes the function, verifying its invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyFunctionError`] violated — malformed block
    /// endings, branch targets out of range, operand class mismatches,
    /// duplicate labels, or a fall-through off the end of the function.
    pub fn finish(self) -> Result<Function, VerifyFunctionError> {
        self.f.verify()?;
        Ok(self.f)
    }

    /// Finishes without verification (for tests that build intentionally
    /// malformed functions).
    pub fn finish_unverified(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = FunctionBuilder::new("t");
        let r = b.gpr();
        let e = b.block("e");
        b.switch_to(e);
        let i0 = b.load_imm(r, 1);
        let i1 = b.ret();
        assert_eq!(i0, InstId::new(0));
        assert_eq!(i1, InstId::new(1));
        let f = b.finish().expect("verifies");
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn emit_without_block_panics() {
        let mut b = FunctionBuilder::new("t");
        let r = b.gpr();
        b.load_imm(r, 1);
    }

    #[test]
    fn finish_rejects_missing_terminator() {
        let mut b = FunctionBuilder::new("t");
        let r = b.gpr();
        let e = b.block("e");
        b.switch_to(e);
        b.load_imm(r, 1);
        // Last block falls through off the end of the function.
        assert!(b.finish().is_err());
    }
}
