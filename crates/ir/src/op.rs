//! Instruction operations and their static properties.

use crate::block::BlockId;
use crate::function::SymId;
use crate::reg::{Reg, RegClass};
use std::fmt;

/// One bit of a condition register field, set by compares and tested by
/// conditional branches.
///
/// The paper's pseudo-code spells these `0x1/lt`, `0x2/gt`, `0x4/eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CondBit {
    /// "Less than" bit, mask `0x1`.
    Lt,
    /// "Greater than" bit, mask `0x2`.
    Gt,
    /// "Equal" bit, mask `0x4`.
    Eq,
}

impl CondBit {
    /// The mask used in the assembly spelling.
    pub fn mask(self) -> u8 {
        match self {
            CondBit::Lt => 0x1,
            CondBit::Gt => 0x2,
            CondBit::Eq => 0x4,
        }
    }

    /// The mnemonic suffix (`lt`, `gt`, `eq`).
    pub fn name(self) -> &'static str {
        match self {
            CondBit::Lt => "lt",
            CondBit::Gt => "gt",
            CondBit::Eq => "eq",
        }
    }
}

impl fmt::Display for CondBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}/{}", self.mask(), self.name())
    }
}

/// A memory reference `sym(base, disp)`: the effective address is
/// `base + disp`, and `sym` (when present) names the object being
/// addressed, which the memory disambiguator uses to prove accesses
/// independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The symbol (array / global) this access addresses, if known.
    pub sym: Option<SymId>,
    /// Base address register (always a GPR).
    pub base: Reg,
    /// Byte displacement added to the base.
    pub disp: i64,
}

impl MemRef {
    /// A reference with a known symbol.
    pub fn sym(sym: SymId, base: Reg, disp: i64) -> Self {
        MemRef {
            sym: Some(sym),
            base,
            disp,
        }
    }

    /// A reference with no symbol information (may alias anything).
    pub fn bare(base: Reg, disp: i64) -> Self {
        MemRef {
            sym: None,
            base,
            disp,
        }
    }
}

/// Fixed point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FxBinOp {
    /// Wrapping addition (`A`).
    Add,
    /// Wrapping subtraction (`S`).
    Sub,
    /// Wrapping multiplication (`MUL`).
    Mul,
    /// Total division — `x / 0 == 0` (`DIV`).
    Div,
    /// Bitwise and (`AND`).
    And,
    /// Bitwise or (`OR`).
    Or,
    /// Bitwise exclusive or (`XOR`).
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl FxBinOp {
    /// Register-register mnemonic (`A`, `S`, `MUL`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FxBinOp::Add => "A",
            FxBinOp::Sub => "S",
            FxBinOp::Mul => "MUL",
            FxBinOp::Div => "DIV",
            FxBinOp::And => "AND",
            FxBinOp::Or => "OR",
            FxBinOp::Xor => "XOR",
            FxBinOp::Sll => "SLL",
            FxBinOp::Srl => "SRL",
            FxBinOp::Sra => "SRA",
        }
    }

    /// Evaluates the operation on two's-complement 64-bit integers with
    /// *total* semantics: wrapping arithmetic, `x / 0 == 0`, and shift
    /// amounts masked to 6 bits. The simulator and the constant folder
    /// share this single definition, which is also what makes divides
    /// safe to execute speculatively in the machine model.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            FxBinOp::Add => a.wrapping_add(b),
            FxBinOp::Sub => a.wrapping_sub(b),
            FxBinOp::Mul => a.wrapping_mul(b),
            FxBinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            FxBinOp::And => a & b,
            FxBinOp::Or => a | b,
            FxBinOp::Xor => a ^ b,
            FxBinOp::Sll => a.wrapping_shl((b & 63) as u32),
            FxBinOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
            FxBinOp::Sra => a.wrapping_shr((b & 63) as u32),
        }
    }

    /// Whether `a op b == b op a`.
    pub fn commutes(self) -> bool {
        matches!(
            self,
            FxBinOp::Add | FxBinOp::Mul | FxBinOp::And | FxBinOp::Or | FxBinOp::Xor
        )
    }

    /// Register-immediate mnemonic (`AI`, `SI`, `MULI`, ...).
    pub fn imm_mnemonic(self) -> &'static str {
        match self {
            FxBinOp::Add => "AI",
            FxBinOp::Sub => "SI",
            FxBinOp::Mul => "MULI",
            FxBinOp::Div => "DIVI",
            FxBinOp::And => "ANDI",
            FxBinOp::Or => "ORI",
            FxBinOp::Xor => "XORI",
            FxBinOp::Sll => "SLLI",
            FxBinOp::Srl => "SRLI",
            FxBinOp::Sra => "SRAI",
        }
    }
}

/// Floating point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    /// Addition (`FA`).
    Add,
    /// Subtraction (`FS`).
    Sub,
    /// Multiplication (`FM`).
    Mul,
    /// Division (`FD`).
    Div,
}

impl FpBinOp {
    /// Mnemonic (`FA`, `FS`, `FM`, `FD`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "FA",
            FpBinOp::Sub => "FS",
            FpBinOp::Mul => "FM",
            FpBinOp::Div => "FD",
        }
    }
}

/// Coarse operation classes, the granularity at which the parametric
/// machine description assigns functional unit kinds, execution times and
/// delay rules (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle fixed point computation (arith/logic/move/immediates).
    Fx,
    /// Fixed point multiply (multi-cycle).
    FxMul,
    /// Fixed point divide (multi-cycle).
    FxDiv,
    /// Memory load (delayed load rule applies).
    Load,
    /// Memory store.
    Store,
    /// Fixed point compare (compare→branch delay applies).
    FxCompare,
    /// Floating point computation (result delay applies).
    Fp,
    /// Floating point multiply.
    FpMul,
    /// Floating point divide.
    FpDiv,
    /// Floating point compare (longer compare→branch delay).
    FpCompare,
    /// Branch instructions (run on the branch unit).
    Branch,
    /// Calls and other opaque side-effecting operations.
    Call,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpClass::Fx => "fx",
            OpClass::FxMul => "fx-mul",
            OpClass::FxDiv => "fx-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::FxCompare => "fx-compare",
            OpClass::Fp => "fp",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::FpCompare => "fp-compare",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
        };
        f.write_str(name)
    }
}

/// An instruction operation.
///
/// Variants carry their operands directly; query methods ([`Op::defs`],
/// [`Op::uses`], [`Op::class`], ...) expose the uniform view the analyses
/// and the scheduler need. See the crate docs for the assembly spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `L rt=sym(base,disp)` — load the word at `base+disp` into `rt`.
    Load {
        /// Target register.
        rt: Reg,
        /// Address read.
        mem: MemRef,
    },
    /// `LU rt,base=sym(base,disp)` — *load with update*: load the word at
    /// `base+disp` into `rt` and write the effective address back to
    /// `base` (the post-increment idiom of Figure 2's `I2`).
    LoadUpdate {
        /// Target register.
        rt: Reg,
        /// Address read; its base register is also written back.
        mem: MemRef,
    },
    /// `ST rs=>sym(base,disp)` — store `rs` to `base+disp`.
    Store {
        /// Source register.
        rs: Reg,
        /// Address written.
        mem: MemRef,
    },
    /// `STU rs=>sym(base,disp)` — store with update of the base register.
    StoreUpdate {
        /// Source register.
        rs: Reg,
        /// Address written; its base register is also written back.
        mem: MemRef,
    },
    /// `LI rt=imm` — load immediate.
    LoadImm {
        /// Target register.
        rt: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `LR rt=rs` — register move (same class).
    Move {
        /// Target register.
        rt: Reg,
        /// Source register.
        rs: Reg,
    },
    /// Fixed point register-register operation, e.g. `A rt=ra,rb`.
    Fx {
        /// The arithmetic/logic operation.
        op: FxBinOp,
        /// Target register.
        rt: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
    },
    /// Fixed point register-immediate operation, e.g. `AI rt=ra,imm`.
    FxImm {
        /// The arithmetic/logic operation.
        op: FxBinOp,
        /// Target register.
        rt: Reg,
        /// Register operand.
        ra: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Floating point register-register operation, e.g. `FA rt=ra,rb`.
    Fp {
        /// The floating point operation.
        op: FpBinOp,
        /// Target register.
        rt: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
    },
    /// `C crt=ra,rb` — fixed point compare setting `crt`'s lt/gt/eq bits.
    Compare {
        /// Condition register written.
        crt: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
    },
    /// `CI crt=ra,imm` — fixed point compare against an immediate.
    CompareImm {
        /// Condition register written.
        crt: Reg,
        /// Register operand.
        ra: Reg,
        /// Immediate compared against.
        imm: i64,
    },
    /// `FC crt=ra,rb` — floating point compare.
    FpCompare {
        /// Condition register written.
        crt: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
    },
    /// `BT/BF target,cr,bit` — conditional branch: taken when the given
    /// bit of `cr` equals `when`; otherwise control falls through.
    BranchCond {
        /// Block branched to when the condition holds.
        target: BlockId,
        /// Condition register tested.
        cr: Reg,
        /// Which condition bit is tested.
        bit: CondBit,
        /// The bit value that takes the branch (`true` for `BT`).
        when: bool,
    },
    /// `B target` — unconditional branch.
    Branch {
        /// Block branched to.
        target: BlockId,
    },
    /// `RET` — return from the function.
    Ret,
    /// `CALL name` — opaque call; uses and defines the listed registers
    /// and may read or write any memory. Never moved or speculated.
    Call {
        /// Callee name (opaque).
        name: String,
        /// Registers the call reads.
        uses: Vec<Reg>,
        /// Registers the call writes.
        defs: Vec<Reg>,
    },
    /// `PRINT rs` — append `rs` to the observable output trace (the
    /// reproduction's stand-in for `printf`). Behaves like a call.
    Print {
        /// Register whose value is printed.
        rs: Reg,
    },
}

impl Op {
    /// Registers written by this operation.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Op::Load { rt, .. } | Op::LoadImm { rt, .. } | Op::Move { rt, .. } => vec![*rt],
            Op::LoadUpdate { rt, mem } => vec![*rt, mem.base],
            Op::Store { .. } => vec![],
            Op::StoreUpdate { mem, .. } => vec![mem.base],
            Op::Fx { rt, .. } | Op::FxImm { rt, .. } | Op::Fp { rt, .. } => vec![*rt],
            Op::Compare { crt, .. } | Op::CompareImm { crt, .. } | Op::FpCompare { crt, .. } => {
                vec![*crt]
            }
            Op::BranchCond { .. } | Op::Branch { .. } | Op::Ret | Op::Print { .. } => vec![],
            Op::Call { defs, .. } => defs.clone(),
        }
    }

    /// Appends the registers written by this operation to `out` —
    /// [`defs`](Self::defs) without the per-call allocation, for callers
    /// that batch many instructions into one buffer.
    pub fn defs_into(&self, out: &mut Vec<Reg>) {
        match self {
            Op::Load { rt, .. } | Op::LoadImm { rt, .. } | Op::Move { rt, .. } => out.push(*rt),
            Op::LoadUpdate { rt, mem } => out.extend([*rt, mem.base]),
            Op::Store { .. } => {}
            Op::StoreUpdate { mem, .. } => out.push(mem.base),
            Op::Fx { rt, .. } | Op::FxImm { rt, .. } | Op::Fp { rt, .. } => out.push(*rt),
            Op::Compare { crt, .. } | Op::CompareImm { crt, .. } | Op::FpCompare { crt, .. } => {
                out.push(*crt)
            }
            Op::BranchCond { .. } | Op::Branch { .. } | Op::Ret | Op::Print { .. } => {}
            Op::Call { defs, .. } => out.extend_from_slice(defs),
        }
    }

    /// Registers read by this operation.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Op::Load { mem, .. } | Op::LoadUpdate { mem, .. } => vec![mem.base],
            Op::Store { rs, mem } | Op::StoreUpdate { rs, mem } => vec![*rs, mem.base],
            Op::LoadImm { .. } => vec![],
            Op::Move { rs, .. } => vec![*rs],
            Op::Fx { ra, rb, .. } | Op::Fp { ra, rb, .. } => vec![*ra, *rb],
            Op::FxImm { ra, .. } => vec![*ra],
            Op::Compare { ra, rb, .. } | Op::FpCompare { ra, rb, .. } => vec![*ra, *rb],
            Op::CompareImm { ra, .. } => vec![*ra],
            Op::BranchCond { cr, .. } => vec![*cr],
            Op::Branch { .. } | Op::Ret => vec![],
            Op::Call { uses, .. } => uses.clone(),
            Op::Print { rs } => vec![*rs],
        }
    }

    /// Appends the registers read by this operation to `out` —
    /// [`uses`](Self::uses) without the per-call allocation.
    pub fn uses_into(&self, out: &mut Vec<Reg>) {
        match self {
            Op::Load { mem, .. } | Op::LoadUpdate { mem, .. } => out.push(mem.base),
            Op::Store { rs, mem } | Op::StoreUpdate { rs, mem } => out.extend([*rs, mem.base]),
            Op::LoadImm { .. } => {}
            Op::Move { rs, .. } => out.push(*rs),
            Op::Fx { ra, rb, .. } | Op::Fp { ra, rb, .. } => out.extend([*ra, *rb]),
            Op::FxImm { ra, .. } => out.push(*ra),
            Op::Compare { ra, rb, .. } | Op::FpCompare { ra, rb, .. } => out.extend([*ra, *rb]),
            Op::CompareImm { ra, .. } => out.push(*ra),
            Op::BranchCond { cr, .. } => out.push(*cr),
            Op::Branch { .. } | Op::Ret => {}
            Op::Call { uses, .. } => out.extend_from_slice(uses),
            Op::Print { rs } => out.push(*rs),
        }
    }

    /// The coarse class used by the parametric machine description.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Load { rt, .. } | Op::LoadUpdate { rt, .. } => {
                // Loads into an FPR still occupy the fixed point unit on
                // the RS/6000; the class stays `Load` either way.
                let _ = rt;
                OpClass::Load
            }
            Op::Store { .. } | Op::StoreUpdate { .. } => OpClass::Store,
            Op::LoadImm { .. } | Op::Move { .. } => OpClass::Fx,
            Op::Fx { op, .. } | Op::FxImm { op, .. } => match op {
                FxBinOp::Mul => OpClass::FxMul,
                FxBinOp::Div => OpClass::FxDiv,
                _ => OpClass::Fx,
            },
            Op::Fp { op, .. } => match op {
                FpBinOp::Mul => OpClass::FpMul,
                FpBinOp::Div => OpClass::FpDiv,
                _ => OpClass::Fp,
            },
            Op::Compare { .. } | Op::CompareImm { .. } => OpClass::FxCompare,
            Op::FpCompare { .. } => OpClass::FpCompare,
            Op::BranchCond { .. } | Op::Branch { .. } | Op::Ret => OpClass::Branch,
            Op::Call { .. } | Op::Print { .. } => OpClass::Call,
        }
    }

    /// Whether this is any kind of branch (including `RET`).
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::BranchCond { .. } | Op::Branch { .. } | Op::Ret)
    }

    /// Whether this operation ends a basic block unconditionally
    /// (no fall-through successor).
    pub fn is_block_end(&self) -> bool {
        matches!(self, Op::Branch { .. } | Op::Ret)
    }

    /// Explicit branch target, if any.
    pub fn branch_target(&self) -> Option<BlockId> {
        match self {
            Op::BranchCond { target, .. } | Op::Branch { target } => Some(*target),
            _ => None,
        }
    }

    /// Whether this operation reads or writes memory (or may, as calls do).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::LoadUpdate { .. }
                | Op::Store { .. }
                | Op::StoreUpdate { .. }
                | Op::Call { .. }
                | Op::Print { .. }
        )
    }

    /// The memory reference and whether it is a write, for plain
    /// loads/stores. Calls return `None` (they conservatively conflict
    /// with everything via [`Op::touches_memory`]).
    pub fn mem_access(&self) -> Option<(MemRef, bool)> {
        match self {
            Op::Load { mem, .. } | Op::LoadUpdate { mem, .. } => Some((*mem, false)),
            Op::Store { mem, .. } | Op::StoreUpdate { mem, .. } => Some((*mem, true)),
            _ => None,
        }
    }

    /// Whether this operation writes memory (or may).
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::StoreUpdate { .. } | Op::Call { .. } | Op::Print { .. }
        )
    }

    /// Whether the scheduler may move this instruction beyond its basic
    /// block at all. The paper excludes calls (§5.1); we treat `PRINT`
    /// as a call. Branches are anchored by the framework itself.
    pub fn may_cross_block(&self) -> bool {
        !matches!(self, Op::Call { .. } | Op::Print { .. }) && !self.is_branch()
    }

    /// Whether the scheduler may execute this instruction speculatively
    /// (§5.1: never stores, never calls; branches are anchored).
    pub fn may_speculate(&self) -> bool {
        self.may_cross_block() && !self.writes_memory()
    }

    /// Applies `f` to every register this operation *uses*.
    ///
    /// Note the update forms (`LU`/`STU`) hold their base register in one
    /// field that is simultaneously a use and a def; rewriting the use also
    /// rewrites the def. Renaming passes must keep such defs and uses in
    /// the same web (see `gis-pdg`).
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::Load { mem, .. } | Op::LoadUpdate { mem, .. } => mem.base = f(mem.base),
            Op::Store { rs, mem } | Op::StoreUpdate { rs, mem } => {
                *rs = f(*rs);
                mem.base = f(mem.base);
            }
            Op::LoadImm { .. } => {}
            Op::Move { rs, .. } => *rs = f(*rs),
            Op::Fx { ra, rb, .. } | Op::Fp { ra, rb, .. } => {
                *ra = f(*ra);
                *rb = f(*rb);
            }
            Op::FxImm { ra, .. } => *ra = f(*ra),
            Op::Compare { ra, rb, .. } | Op::FpCompare { ra, rb, .. } => {
                *ra = f(*ra);
                *rb = f(*rb);
            }
            Op::CompareImm { ra, .. } => *ra = f(*ra),
            Op::BranchCond { cr, .. } => *cr = f(*cr),
            Op::Branch { .. } | Op::Ret => {}
            Op::Call { uses, .. } => {
                for u in uses {
                    *u = f(*u);
                }
            }
            Op::Print { rs } => *rs = f(*rs),
        }
    }

    /// Applies `f` to every register this operation *defines*.
    ///
    /// See [`Op::map_uses`] for the caveat about update-form base
    /// registers.
    pub fn map_defs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::Load { rt, .. } | Op::LoadImm { rt, .. } | Op::Move { rt, .. } => *rt = f(*rt),
            Op::LoadUpdate { rt, mem } => {
                *rt = f(*rt);
                mem.base = f(mem.base);
            }
            Op::Store { .. } => {}
            Op::StoreUpdate { mem, .. } => mem.base = f(mem.base),
            Op::Fx { rt, .. } | Op::FxImm { rt, .. } | Op::Fp { rt, .. } => *rt = f(*rt),
            Op::Compare { crt, .. } | Op::CompareImm { crt, .. } | Op::FpCompare { crt, .. } => {
                *crt = f(*crt)
            }
            Op::BranchCond { .. } | Op::Branch { .. } | Op::Ret | Op::Print { .. } => {}
            Op::Call { defs, .. } => {
                for d in defs {
                    *d = f(*d);
                }
            }
        }
    }

    /// Whether the def and a use of this op are tied to the same storage
    /// (the update-form base register), so renaming cannot separate them.
    pub fn has_tied_base(&self) -> bool {
        matches!(self, Op::LoadUpdate { .. } | Op::StoreUpdate { .. })
    }

    /// Applies `f` to every branch target (used when cloning blocks for
    /// unrolling / rotation).
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Op::BranchCond { target, .. } | Op::Branch { target } => *target = f(*target),
            _ => {}
        }
    }
}

/// Verifies class expectations of the operands; returns a human-readable
/// complaint on the first violation.
pub(crate) fn check_operand_classes(op: &Op) -> Result<(), String> {
    let want = |r: Reg, c: RegClass, what: &str| -> Result<(), String> {
        if r.class() == c {
            Ok(())
        } else {
            Err(format!("{what} must be {c}, got {r}"))
        }
    };
    match op {
        Op::Load { mem, .. }
        | Op::LoadUpdate { mem, .. }
        | Op::Store { mem, .. }
        | Op::StoreUpdate { mem, .. } => want(mem.base, RegClass::Gpr, "memory base"),
        Op::LoadImm { rt, .. } => want(*rt, RegClass::Gpr, "LI target"),
        Op::Move { rt, rs } => {
            if rt.class() == rs.class() {
                Ok(())
            } else {
                Err(format!("LR operands must share a class, got {rt}={rs}"))
            }
        }
        Op::Fx { rt, ra, rb, .. } => {
            want(*rt, RegClass::Gpr, "fx target")?;
            want(*ra, RegClass::Gpr, "fx operand")?;
            want(*rb, RegClass::Gpr, "fx operand")
        }
        Op::FxImm { rt, ra, .. } => {
            want(*rt, RegClass::Gpr, "fx target")?;
            want(*ra, RegClass::Gpr, "fx operand")
        }
        Op::Fp { rt, ra, rb, .. } => {
            want(*rt, RegClass::Fpr, "fp target")?;
            want(*ra, RegClass::Fpr, "fp operand")?;
            want(*rb, RegClass::Fpr, "fp operand")
        }
        Op::Compare { crt, ra, rb } => {
            want(*crt, RegClass::Cr, "compare target")?;
            want(*ra, RegClass::Gpr, "compare operand")?;
            want(*rb, RegClass::Gpr, "compare operand")
        }
        Op::CompareImm { crt, ra, .. } => {
            want(*crt, RegClass::Cr, "compare target")?;
            want(*ra, RegClass::Gpr, "compare operand")
        }
        Op::FpCompare { crt, ra, rb } => {
            want(*crt, RegClass::Cr, "compare target")?;
            want(*ra, RegClass::Fpr, "fp compare operand")?;
            want(*rb, RegClass::Fpr, "fp compare operand")
        }
        Op::BranchCond { cr, .. } => want(*cr, RegClass::Cr, "branch condition"),
        Op::Branch { .. } | Op::Ret | Op::Call { .. } => Ok(()),
        Op::Print { rs } => want(*rs, RegClass::Gpr, "PRINT operand"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpr(i: u32) -> Reg {
        Reg::gpr(i)
    }

    #[test]
    fn load_update_defs_both_target_and_base() {
        let op = Op::LoadUpdate {
            rt: gpr(0),
            mem: MemRef::bare(gpr(31), 8),
        };
        assert_eq!(op.defs(), vec![gpr(0), gpr(31)]);
        assert_eq!(op.uses(), vec![gpr(31)]);
        assert!(op.has_tied_base());
    }

    #[test]
    fn store_defs_nothing_uses_value_and_base() {
        let op = Op::Store {
            rs: gpr(5),
            mem: MemRef::bare(gpr(1), 0),
        };
        assert!(op.defs().is_empty());
        assert_eq!(op.uses(), vec![gpr(5), gpr(1)]);
        assert!(op.writes_memory());
        assert!(!op.may_speculate());
        assert!(op.may_cross_block());
    }

    #[test]
    fn branch_classification() {
        let b = Op::Branch {
            target: BlockId::new(3),
        };
        assert!(b.is_branch());
        assert!(b.is_block_end());
        assert_eq!(b.branch_target(), Some(BlockId::new(3)));
        let bc = Op::BranchCond {
            target: BlockId::new(1),
            cr: Reg::cr(7),
            bit: CondBit::Gt,
            when: false,
        };
        assert!(bc.is_branch());
        assert!(!bc.is_block_end());
        assert_eq!(bc.uses(), vec![Reg::cr(7)]);
    }

    #[test]
    fn call_and_print_are_anchored() {
        let call = Op::Call {
            name: "f".into(),
            uses: vec![gpr(3)],
            defs: vec![gpr(3)],
        };
        assert!(!call.may_cross_block());
        assert!(!call.may_speculate());
        assert!(call.touches_memory());
        let print = Op::Print { rs: gpr(3) };
        assert!(!print.may_cross_block());
        assert!(print.writes_memory(), "print is ordered like a store");
    }

    #[test]
    fn loads_may_speculate_stores_may_not() {
        let ld = Op::Load {
            rt: gpr(2),
            mem: MemRef::bare(gpr(1), 4),
        };
        assert!(ld.may_speculate());
        let st = Op::Store {
            rs: gpr(2),
            mem: MemRef::bare(gpr(1), 4),
        };
        assert!(!st.may_speculate());
    }

    #[test]
    fn classes() {
        assert_eq!(
            Op::Fx {
                op: FxBinOp::Mul,
                rt: gpr(0),
                ra: gpr(1),
                rb: gpr(2)
            }
            .class(),
            OpClass::FxMul
        );
        assert_eq!(
            Op::CompareImm {
                crt: Reg::cr(0),
                ra: gpr(1),
                imm: 3
            }
            .class(),
            OpClass::FxCompare
        );
        assert_eq!(Op::Ret.class(), OpClass::Branch);
    }

    #[test]
    fn map_defs_on_update_form_rewrites_base() {
        let mut op = Op::LoadUpdate {
            rt: gpr(0),
            mem: MemRef::bare(gpr(31), 8),
        };
        op.map_defs(|r| if r == gpr(31) { gpr(40) } else { r });
        assert_eq!(op.defs(), vec![gpr(0), gpr(40)]);
        // The tied use moved with it.
        assert_eq!(op.uses(), vec![gpr(40)]);
    }

    #[test]
    fn operand_class_checking() {
        assert!(check_operand_classes(&Op::Compare {
            crt: Reg::cr(1),
            ra: gpr(0),
            rb: gpr(2)
        })
        .is_ok());
        assert!(check_operand_classes(&Op::Compare {
            crt: gpr(1),
            ra: gpr(0),
            rb: gpr(2)
        })
        .is_err());
        assert!(check_operand_classes(&Op::Move {
            rt: gpr(1),
            rs: Reg::fpr(1)
        })
        .is_err());
    }
}
