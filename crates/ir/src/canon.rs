//! Canonical byte serialization of [`Function`]s.
//!
//! A deterministic, platform-independent binary form: the same function
//! always serializes to the same bytes, so the bytes can serve as a
//! *content address*. `gis-serve`'s schedule cache keys on the FNV-64 of
//! this encoding (plus machine and config fingerprints), and the wire
//! protocol can ship functions in this form where text would be wasteful.
//!
//! The field order is fixed by this module and versioned by a leading
//! format byte: function name, symbol table, allocator counters, then
//! blocks in layout order (label, then instructions in order, each as a
//! stable id plus a tagged operation). Every integer is little-endian.
//! Nothing about the encoding depends on hash-map iteration order or
//! pointer values, and a round-trip restores the function *exactly* —
//! including the fresh-id counters, which matters because a scheduled
//! function's output text depends on which fresh registers renaming
//! hands out.

use crate::block::{BlockId, Inst, InstId};
use crate::function::{Function, SymId};
use crate::op::{CondBit, FpBinOp, FxBinOp, MemRef, Op};
use crate::reg::{Reg, RegClass};
use std::fmt;

/// The format magic ("GIS function").
const MAGIC: &[u8; 4] = b"GISF";

/// Current encoding version.
const VERSION: u8 = 1;

/// A malformed canonical encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the problem in the input.
    pub offset: usize,
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "canonical decode: {} at byte {}",
            self.message, self.offset
        )
    }
}

impl std::error::Error for CanonError {}

/// Serializes a function into its canonical byte form.
///
/// Deterministic: equal functions (same name, symbols, allocator state,
/// blocks, labels, instruction ids and operations) produce equal bytes.
///
/// ```
/// use gis_ir::{canon, parse_function};
///
/// let f = parse_function("func t\ne:\n LI r0=7\n PRINT r0\n RET\n").unwrap();
/// let bytes = canon::to_canonical_bytes(&f);
/// let g = canon::from_canonical_bytes(&bytes).unwrap();
/// assert_eq!(f.to_string(), g.to_string());
/// assert_eq!(bytes, canon::to_canonical_bytes(&g));
/// ```
pub fn to_canonical_bytes(f: &Function) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + f.num_insts() * 16);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_str(&mut out, f.name());
    let symbols: Vec<&str> = f.symbols().map(|(_, s)| s).collect();
    put_u32(&mut out, symbols.len() as u32);
    for s in symbols {
        put_str(&mut out, s);
    }
    put_u32(&mut out, f.inst_id_bound() as u32);
    for c in f.reg_counters() {
        put_u32(&mut out, c);
    }
    put_u32(&mut out, f.num_blocks() as u32);
    for (_, block) in f.blocks() {
        put_str(&mut out, block.label());
        put_u32(&mut out, block.len() as u32);
        for inst in block.insts() {
            put_u32(&mut out, inst.id.index() as u32);
            put_op(&mut out, &inst.op);
        }
    }
    out
}

/// Decodes a function from its canonical byte form, restoring it exactly
/// (see [`to_canonical_bytes`]). Branch targets are checked against the
/// block count; everything else structural is the caller's concern
/// ([`Function::verify`] accepts exactly the functions the rest of the
/// workspace does).
pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Function, CanonError> {
    let mut c = Cursor { bytes, pos: 0 };
    let magic = c.take(4)?;
    if magic != MAGIC {
        return Err(c.fail("bad magic (not a canonical function)"));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(c.fail(&format!("unsupported version {version}")));
    }
    let name = c.str()?;
    let mut f = Function::new(name);
    let n_syms = c.u32()? as usize;
    for _ in 0..n_syms {
        let s = c.str()?;
        f.add_symbol(s);
    }
    let next_inst = c.u32()?;
    let next_reg = [c.u32()?, c.u32()?, c.u32()?];
    let n_blocks = c.u32()? as usize;
    for _ in 0..n_blocks {
        let label = c.str()?;
        let id = f.add_block(label);
        let n = c.u32()? as usize;
        for _ in 0..n {
            let inst_id = InstId::new(c.u32()?);
            let op = c.op(n_syms)?;
            f.block_mut(id).push(Inst::new(inst_id, op));
        }
    }
    if c.pos != bytes.len() {
        return Err(c.fail("trailing bytes after function"));
    }
    // Branch targets must refer to decoded blocks.
    for (_, inst) in f.insts() {
        if let Some(t) = inst.op.branch_target() {
            if t.index() >= n_blocks {
                return Err(CanonError {
                    message: format!("branch target {t} out of range ({n_blocks} blocks)"),
                    offset: bytes.len(),
                });
            }
        }
    }
    f.set_allocators(next_inst, next_reg);
    Ok(f)
}

// --------------------------------------------------------------- regions

/// The region-subtree format magic ("GIS region").
const REGION_MAGIC: &[u8; 4] = b"GISR";

/// Current region encoding version. Bump when the field order, widths or
/// tags of [`canon_region`] change — every persisted region-memo key
/// derives from it.
const REGION_VERSION: u8 = 1;

/// Serializes one region subtree — an arbitrary set of blocks of `f` —
/// into a canonical byte form, the region-granular analogue of
/// [`to_canonical_bytes`].
///
/// Blocks are encoded in ascending [`BlockId`] order regardless of the
/// order given, so callers can pass subtree block lists as they fall out
/// of a region-tree walk. Each block contributes its id, label, successor
/// ids (branch targets plus fallthrough, so the control shape *inside and
/// out of* the region is pinned), then its instructions as stable id plus
/// tagged operation. Block and instruction ids are the function's
/// absolute ids: two regions only share an address when their numbering
/// agrees, which is exactly the contract the scheduler's splice machinery
/// needs (it re-uses the recorded ids verbatim).
///
/// Nothing here depends on arena slot order — only on the logical
/// layout-ordered content — so compacting, snapshotting or round-tripping
/// the function leaves the bytes unchanged.
pub fn canon_region(f: &Function, blocks: &[BlockId]) -> Vec<u8> {
    let mut sorted: Vec<BlockId> = blocks.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = Vec::with_capacity(16 + sorted.len() * 24);
    out.extend_from_slice(REGION_MAGIC);
    out.push(REGION_VERSION);
    put_u32(&mut out, sorted.len() as u32);
    for &b in &sorted {
        let block = f.block(b);
        put_u32(&mut out, b.index() as u32);
        put_str(&mut out, block.label());
        let succs = f.succs(b);
        put_u32(&mut out, succs.len() as u32);
        for s in succs {
            put_u32(&mut out, s.index() as u32);
        }
        put_u32(&mut out, block.len() as u32);
        for inst in block.insts() {
            put_u32(&mut out, inst.id.index() as u32);
            put_op(&mut out, &inst.op);
        }
    }
    out
}

/// FNV-64 of [`canon_region`]: the content address of one region subtree.
pub fn hash_region(f: &Function, blocks: &[BlockId]) -> u64 {
    crate::hash::fnv64(&canon_region(f, blocks))
}

// --------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(match r.class() {
        RegClass::Gpr => 0,
        RegClass::Fpr => 1,
        RegClass::Cr => 2,
    });
    put_u32(out, r.index());
}

fn put_mem(out: &mut Vec<u8>, mem: &MemRef) {
    match mem.sym {
        Some(s) => {
            out.push(1);
            put_u32(out, s.index() as u32);
        }
        None => out.push(0),
    }
    put_reg(out, mem.base);
    put_i64(out, mem.disp);
}

fn fx_tag(op: FxBinOp) -> u8 {
    match op {
        FxBinOp::Add => 0,
        FxBinOp::Sub => 1,
        FxBinOp::Mul => 2,
        FxBinOp::Div => 3,
        FxBinOp::And => 4,
        FxBinOp::Or => 5,
        FxBinOp::Xor => 6,
        FxBinOp::Sll => 7,
        FxBinOp::Srl => 8,
        FxBinOp::Sra => 9,
    }
}

fn fp_tag(op: FpBinOp) -> u8 {
    match op {
        FpBinOp::Add => 0,
        FpBinOp::Sub => 1,
        FpBinOp::Mul => 2,
        FpBinOp::Div => 3,
    }
}

fn bit_tag(bit: CondBit) -> u8 {
    match bit {
        CondBit::Lt => 0,
        CondBit::Gt => 1,
        CondBit::Eq => 2,
    }
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Load { rt, mem } => {
            out.push(0);
            put_reg(out, *rt);
            put_mem(out, mem);
        }
        Op::LoadUpdate { rt, mem } => {
            out.push(1);
            put_reg(out, *rt);
            put_mem(out, mem);
        }
        Op::Store { rs, mem } => {
            out.push(2);
            put_reg(out, *rs);
            put_mem(out, mem);
        }
        Op::StoreUpdate { rs, mem } => {
            out.push(3);
            put_reg(out, *rs);
            put_mem(out, mem);
        }
        Op::LoadImm { rt, imm } => {
            out.push(4);
            put_reg(out, *rt);
            put_i64(out, *imm);
        }
        Op::Move { rt, rs } => {
            out.push(5);
            put_reg(out, *rt);
            put_reg(out, *rs);
        }
        Op::Fx { op, rt, ra, rb } => {
            out.push(6);
            out.push(fx_tag(*op));
            put_reg(out, *rt);
            put_reg(out, *ra);
            put_reg(out, *rb);
        }
        Op::FxImm { op, rt, ra, imm } => {
            out.push(7);
            out.push(fx_tag(*op));
            put_reg(out, *rt);
            put_reg(out, *ra);
            put_i64(out, *imm);
        }
        Op::Fp { op, rt, ra, rb } => {
            out.push(8);
            out.push(fp_tag(*op));
            put_reg(out, *rt);
            put_reg(out, *ra);
            put_reg(out, *rb);
        }
        Op::Compare { crt, ra, rb } => {
            out.push(9);
            put_reg(out, *crt);
            put_reg(out, *ra);
            put_reg(out, *rb);
        }
        Op::CompareImm { crt, ra, imm } => {
            out.push(10);
            put_reg(out, *crt);
            put_reg(out, *ra);
            put_i64(out, *imm);
        }
        Op::FpCompare { crt, ra, rb } => {
            out.push(11);
            put_reg(out, *crt);
            put_reg(out, *ra);
            put_reg(out, *rb);
        }
        Op::BranchCond {
            target,
            cr,
            bit,
            when,
        } => {
            out.push(12);
            put_u32(out, target.index() as u32);
            put_reg(out, *cr);
            out.push(bit_tag(*bit));
            out.push(u8::from(*when));
        }
        Op::Branch { target } => {
            out.push(13);
            put_u32(out, target.index() as u32);
        }
        Op::Ret => out.push(14),
        Op::Call { name, uses, defs } => {
            out.push(15);
            put_str(out, name);
            put_u32(out, uses.len() as u32);
            for r in uses {
                put_reg(out, *r);
            }
            put_u32(out, defs.len() as u32);
            for r in defs {
                put_reg(out, *r);
            }
        }
        Op::Print { rs } => {
            out.push(16);
            put_reg(out, *rs);
        }
    }
}

// --------------------------------------------------------------- decode

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn fail(&self, message: &str) -> CanonError {
        CanonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.fail("truncated input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CanonError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CanonError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> Result<i64, CanonError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, CanonError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("invalid UTF-8 in string"))
    }

    fn reg(&mut self) -> Result<Reg, CanonError> {
        let class = match self.u8()? {
            0 => RegClass::Gpr,
            1 => RegClass::Fpr,
            2 => RegClass::Cr,
            other => return Err(self.fail(&format!("bad register class tag {other}"))),
        };
        Ok(Reg::new(class, self.u32()?))
    }

    fn mem(&mut self, n_syms: usize) -> Result<MemRef, CanonError> {
        let sym = match self.u8()? {
            0 => None,
            1 => {
                let s = self.u32()? as usize;
                if s >= n_syms {
                    return Err(self.fail(&format!("symbol {s} out of range ({n_syms} symbols)")));
                }
                Some(SymId::new(s as u32))
            }
            other => return Err(self.fail(&format!("bad symbol presence tag {other}"))),
        };
        let base = self.reg()?;
        let disp = self.i64()?;
        Ok(MemRef { sym, base, disp })
    }

    fn fx(&mut self) -> Result<FxBinOp, CanonError> {
        Ok(match self.u8()? {
            0 => FxBinOp::Add,
            1 => FxBinOp::Sub,
            2 => FxBinOp::Mul,
            3 => FxBinOp::Div,
            4 => FxBinOp::And,
            5 => FxBinOp::Or,
            6 => FxBinOp::Xor,
            7 => FxBinOp::Sll,
            8 => FxBinOp::Srl,
            9 => FxBinOp::Sra,
            other => return Err(self.fail(&format!("bad fx op tag {other}"))),
        })
    }

    fn fp(&mut self) -> Result<FpBinOp, CanonError> {
        Ok(match self.u8()? {
            0 => FpBinOp::Add,
            1 => FpBinOp::Sub,
            2 => FpBinOp::Mul,
            3 => FpBinOp::Div,
            other => return Err(self.fail(&format!("bad fp op tag {other}"))),
        })
    }

    fn bit(&mut self) -> Result<CondBit, CanonError> {
        Ok(match self.u8()? {
            0 => CondBit::Lt,
            1 => CondBit::Gt,
            2 => CondBit::Eq,
            other => return Err(self.fail(&format!("bad condition bit tag {other}"))),
        })
    }

    fn regs(&mut self) -> Result<Vec<Reg>, CanonError> {
        let n = self.u32()? as usize;
        // Guard against absurd counts from corrupt input before reserving.
        if n > self.bytes.len() {
            return Err(self.fail("register list longer than the input"));
        }
        (0..n).map(|_| self.reg()).collect()
    }

    fn op(&mut self, n_syms: usize) -> Result<Op, CanonError> {
        Ok(match self.u8()? {
            0 => Op::Load {
                rt: self.reg()?,
                mem: self.mem(n_syms)?,
            },
            1 => Op::LoadUpdate {
                rt: self.reg()?,
                mem: self.mem(n_syms)?,
            },
            2 => Op::Store {
                rs: self.reg()?,
                mem: self.mem(n_syms)?,
            },
            3 => Op::StoreUpdate {
                rs: self.reg()?,
                mem: self.mem(n_syms)?,
            },
            4 => Op::LoadImm {
                rt: self.reg()?,
                imm: self.i64()?,
            },
            5 => Op::Move {
                rt: self.reg()?,
                rs: self.reg()?,
            },
            6 => Op::Fx {
                op: self.fx()?,
                rt: self.reg()?,
                ra: self.reg()?,
                rb: self.reg()?,
            },
            7 => Op::FxImm {
                op: self.fx()?,
                rt: self.reg()?,
                ra: self.reg()?,
                imm: self.i64()?,
            },
            8 => Op::Fp {
                op: self.fp()?,
                rt: self.reg()?,
                ra: self.reg()?,
                rb: self.reg()?,
            },
            9 => Op::Compare {
                crt: self.reg()?,
                ra: self.reg()?,
                rb: self.reg()?,
            },
            10 => Op::CompareImm {
                crt: self.reg()?,
                ra: self.reg()?,
                imm: self.i64()?,
            },
            11 => Op::FpCompare {
                crt: self.reg()?,
                ra: self.reg()?,
                rb: self.reg()?,
            },
            12 => Op::BranchCond {
                target: BlockId::new(self.u32()?),
                cr: self.reg()?,
                bit: self.bit()?,
                when: self.u8()? != 0,
            },
            13 => Op::Branch {
                target: BlockId::new(self.u32()?),
            },
            14 => Op::Ret,
            15 => Op::Call {
                name: self.str()?,
                uses: self.regs()?,
                defs: self.regs()?,
            },
            16 => Op::Print { rs: self.reg()? },
            other => return Err(self.fail(&format!("bad op tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fnv64;
    use crate::parse::parse_function;

    /// A function exercising every operation variant, both memory forms,
    /// all three register classes, symbols and a non-trivial allocator
    /// state.
    fn kitchen_sink() -> Function {
        let mut f = Function::new("sink");
        let a = f.add_symbol("a");
        let entry = f.add_block("CL.0");
        let body = f.add_block("CL.1");
        let done = f.add_block("CL.2");
        let g = Reg::gpr;
        let fp = Reg::fpr;
        let cr = Reg::cr;
        let ops = vec![
            Op::Load {
                rt: g(0),
                mem: MemRef::sym(a, g(1), 4),
            },
            Op::LoadUpdate {
                rt: g(2),
                mem: MemRef::bare(g(1), 8),
            },
            Op::LoadImm { rt: g(3), imm: -7 },
            Op::Move {
                rt: fp(0),
                rs: fp(1),
            },
            Op::Fx {
                op: FxBinOp::Xor,
                rt: g(4),
                ra: g(0),
                rb: g(2),
            },
            Op::FxImm {
                op: FxBinOp::Sra,
                rt: g(5),
                ra: g(4),
                imm: 3,
            },
            Op::Fp {
                op: FpBinOp::Mul,
                rt: fp(2),
                ra: fp(0),
                rb: fp(1),
            },
            Op::Compare {
                crt: cr(0),
                ra: g(4),
                rb: g(5),
            },
            Op::CompareImm {
                crt: cr(1),
                ra: g(3),
                imm: 0,
            },
            Op::FpCompare {
                crt: cr(2),
                ra: fp(0),
                rb: fp(2),
            },
            Op::BranchCond {
                target: body,
                cr: cr(0),
                bit: CondBit::Eq,
                when: false,
            },
        ];
        for op in ops {
            let id = f.fresh_inst_id();
            f.block_mut(entry).push(Inst::new(id, op));
        }
        let body_ops = vec![
            Op::Store {
                rs: g(5),
                mem: MemRef::sym(a, g(1), 0),
            },
            Op::StoreUpdate {
                rs: g(5),
                mem: MemRef::bare(g(1), 16),
            },
            Op::Call {
                name: "ext".into(),
                uses: vec![g(3), g(4)],
                defs: vec![g(6)],
            },
            Op::Print { rs: g(6) },
            Op::Branch { target: done },
        ];
        for op in body_ops {
            let id = f.fresh_inst_id();
            f.block_mut(body).push(Inst::new(id, op));
        }
        let id = f.fresh_inst_id();
        f.block_mut(done).push(Inst::new(id, Op::Ret));
        // Advance the allocators past the ids in use, as DCE would.
        f.fresh_inst_id();
        f.fresh_reg(RegClass::Gpr);
        f.fresh_reg(RegClass::Cr);
        f
    }

    #[test]
    fn round_trip_restores_everything() {
        let f = kitchen_sink();
        let bytes = to_canonical_bytes(&f);
        let g = from_canonical_bytes(&bytes).expect("decodes");
        assert_eq!(f.to_string(), g.to_string(), "same text");
        assert_eq!(f.name(), g.name());
        assert_eq!(f.inst_id_bound(), g.inst_id_bound(), "inst allocator");
        assert_eq!(f.reg_counters(), g.reg_counters(), "register allocators");
        assert_eq!(
            f.symbols().collect::<Vec<_>>(),
            g.symbols().collect::<Vec<_>>()
        );
        assert_eq!(bytes, to_canonical_bytes(&g), "encode is a fixed point");
    }

    #[test]
    fn round_trip_through_parser_agrees() {
        let text = "func t\nCL.0:\n LI r1=5\n CI cr0=r1,9\n BT CL.2,cr0,0x1/lt\nCL.1:\n AI r1=r1,1\nCL.2:\n PRINT r1\n RET\n";
        let f = parse_function(text).expect("parses");
        let g = from_canonical_bytes(&to_canonical_bytes(&f)).expect("decodes");
        assert_eq!(f.to_string(), g.to_string());
    }

    /// Determinism pin: the encoding of a fixed function must never
    /// change (field order, integer widths, tags). If this hash moves,
    /// bump [`VERSION`] — every persisted cache key derives from it.
    #[test]
    fn encoding_is_stable() {
        let f = parse_function("func t\ne:\n LI r0=1\n PRINT r0\n RET\n").expect("parses");
        let bytes = to_canonical_bytes(&f);
        assert_eq!(bytes[..5], *b"GISF\x01");
        assert_eq!(fnv64(&bytes), 0x1338_0528_2a96_9e80, "encoding drifted");
    }

    /// Determinism pin for the region-subtree encoding: fixed input,
    /// fixed bytes. If this hash moves, bump [`REGION_VERSION`] — every
    /// region-memo key derives from it.
    #[test]
    fn region_encoding_is_stable() {
        let text = "func t\nCL.0:\n LI r1=5\n CI cr0=r1,9\n BT CL.2,cr0,0x1/lt\nCL.1:\n AI r1=r1,1\nCL.2:\n PRINT r1\n RET\n";
        let f = parse_function(text).expect("parses");
        let all: Vec<BlockId> = f.blocks().map(|(b, _)| b).collect();
        let bytes = canon_region(&f, &all);
        assert_eq!(bytes[..5], *b"GISR\x01");
        assert_eq!(
            fnv64(&bytes),
            0x763e_5f3c_eb9d_60f8,
            "region encoding drifted"
        );
        assert_eq!(hash_region(&f, &all), fnv64(&bytes));
    }

    /// The block list is a *set*: order and duplicates in the caller's
    /// slice don't change the bytes, but which blocks are in the region
    /// does.
    #[test]
    fn region_encoding_is_order_insensitive() {
        let f = kitchen_sink();
        let all: Vec<BlockId> = f.blocks().map(|(b, _)| b).collect();
        let mut shuffled = all.clone();
        shuffled.reverse();
        shuffled.push(all[0]);
        assert_eq!(canon_region(&f, &all), canon_region(&f, &shuffled));
        assert_ne!(hash_region(&f, &all[..2]), hash_region(&f, &all));
        assert_ne!(hash_region(&f, &all[..1]), hash_region(&f, &all[1..2]));
    }

    /// The hash addresses logical content, not arena storage: compacting
    /// the arena via a canonical round-trip, or relinking an instruction
    /// away and back (which permutes the index lists), leaves it fixed.
    #[test]
    fn region_hash_survives_arena_relayout() {
        let f = kitchen_sink();
        let all: Vec<BlockId> = f.blocks().map(|(b, _)| b).collect();
        let before = hash_region(&f, &all);

        // Fresh arena in layout order.
        let g = from_canonical_bytes(&to_canonical_bytes(&f)).expect("decodes");
        assert_eq!(hash_region(&g, &all), before, "round-trip moved the hash");

        // Relink an instruction out of its block and back.
        let mut h = g;
        let entry = all[0];
        let done = all[2];
        let id = h.block(entry).inst_at(1).id;
        h.relink_inst(id, entry, done, 0);
        assert_ne!(hash_region(&h, &all), before, "motion must be visible");
        h.relink_inst(id, done, entry, 1);
        assert_eq!(hash_region(&h, &all), before, "restore must be invisible");
    }

    #[test]
    fn truncated_and_corrupt_inputs_are_rejected() {
        let f = kitchen_sink();
        let bytes = to_canonical_bytes(&f);
        for cut in [0, 3, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_canonical_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(from_canonical_bytes(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(from_canonical_bytes(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(from_canonical_bytes(&trailing).is_err());
    }

    #[test]
    fn different_allocator_state_means_different_bytes() {
        // Two textually identical functions whose fresh-register counters
        // differ must not share a content address: scheduling them can
        // produce different renames.
        let f = parse_function("func t\ne:\n LI r0=1\n RET\n").expect("parses");
        let mut g = from_canonical_bytes(&to_canonical_bytes(&f)).expect("decodes");
        g.fresh_reg(RegClass::Gpr);
        assert_eq!(f.to_string(), g.to_string());
        assert_ne!(to_canonical_bytes(&f), to_canonical_bytes(&g));
    }
}
