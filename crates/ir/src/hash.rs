//! FNV-1a 64-bit hashing: the workspace's one content hash.
//!
//! Dependency-free and stable across platforms and releases, which is
//! what the users of this module need: the benchmark harness pins "same
//! schedule, bit for bit" with it, and the schedule cache of `gis-serve`
//! derives its content address from it — a cache persisted or compared
//! across runs must never see the hash of unchanged bytes change.
//!
//! The parameters are the standard FNV-1a 64-bit ones
//! (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`), so the
//! published test vectors apply and guard against accidental drift.

/// A streaming FNV-1a 64-bit hasher.
///
/// ```
/// use gis_ir::hash::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"foo");
/// h.write(b"bar");
/// assert_eq!(h.finish(), gis_ir::hash::fnv64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

/// The FNV-1a 64-bit offset basis (the hash of the empty input).
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV 64-bit prime.
pub const PRIME: u64 = 0x100_0000_01b3;

impl Fnv64 {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64(OFFSET_BASIS)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    /// Feeds one byte into the hash.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(PRIME);
    }

    /// Feeds a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `i64` in little-endian two's-complement byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// The hash of everything written so far. Does not reset the state.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a 64-bit of one byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// FNV-1a 64-bit of a string's UTF-8 bytes.
pub fn fnv64_str(text: &str) -> u64 {
    fnv64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published FNV-1a 64-bit test vectors (Noll's reference list).
    #[test]
    fn known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv64_str("hello"), 0xa430_d846_80aa_bd0b);
    }

    /// Streaming in any chunking matches the one-shot hash.
    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv64::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), fnv64(data), "split at {split}");
        }
        let mut bytewise = Fnv64::new();
        for &b in data.iter() {
            bytewise.write_u8(b);
        }
        assert_eq!(bytewise.finish(), fnv64(data));
    }

    /// Integer writers are defined as their little-endian byte images —
    /// pinned so serialized cache keys stay stable.
    #[test]
    fn integer_writers_are_little_endian() {
        let mut a = Fnv64::new();
        a.write_u32(0x0102_0304);
        a.write_u64(0x1122_3344_5566_7788);
        a.write_i64(-2);
        let mut b = Fnv64::new();
        b.write(&[0x04, 0x03, 0x02, 0x01]);
        b.write(&[0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]);
        b.write(&(-2i64).to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    /// Stability test: the hash of a fixed input is pinned to a constant,
    /// so any change to the parameters or the byte order shows up here
    /// (and would invalidate persisted schedule-cache keys).
    #[test]
    fn stability_pin() {
        let mut h = Fnv64::new();
        h.write(b"gis-serve/cache-key/v1");
        h.write_u32(3);
        h.write_i64(-1);
        assert_eq!(h.finish(), 0xdc48_2258_a860_a48e);
    }
}
