//! Functions: arena-backed instructions, layout-ordered blocks, symbol
//! and id allocation.

use crate::arena::{InstArena, InstIdx};
use crate::block::{BlockData, BlockId, Inst, InstId};
use crate::op::Op;
use crate::reg::{Reg, RegClass};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies a memory symbol (array / global) within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(u32);

impl SymId {
    /// Creates a symbol id from a raw index.
    pub fn new(index: u32) -> Self {
        SymId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A function: a name, a layout-ordered list of basic blocks (the entry is
/// the first block), the instruction arena the blocks index into, and the
/// allocation state for fresh instruction ids and symbolic registers.
///
/// Construct functions with [`FunctionBuilder`](crate::FunctionBuilder) or
/// [`parse_function`](crate::parse_function); transformation passes mutate
/// them in place and re-check [`Function::verify`].
///
/// Instruction payloads live in a chunked generational arena shared
/// copy-on-write with [`Function::snapshot`]s; blocks hold ordered
/// [`InstIdx`] lists. Read a block through [`Function::block`] (a
/// [`BlockRef`] view), mutate it through [`Function::block_mut`] (a
/// [`BlockMut`]), and move instructions between blocks with
/// [`Function::relink_inst`] — an index relink that never touches the
/// payload.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    arena: InstArena,
    blocks: Vec<Arc<BlockData>>,
    symbols: Vec<String>,
    next_inst: u32,
    next_reg: [u32; 3],
    /// Provenance of duplication-minted copies: copy id → root original
    /// id. Chains are flattened at insertion, so every value is a root.
    /// Excluded from the textual form and the canonical bytes — it is
    /// scheduling metadata, not program content; the structural verifier
    /// reads it to tell sibling copies from genuine duplicate-id bugs.
    dup_origins: std::collections::BTreeMap<InstId, InstId>,
}

/// A read-only view of one basic block.
///
/// `BlockRef` is a `Copy` lens pairing the function (for arena access)
/// with the block's index list, so iteration yields `&Inst` directly:
///
/// ```
/// use gis_ir::parse_function;
///
/// let f = parse_function("func t\ne:\n LI r0=1\n AI r1=r0,2\n RET\n").unwrap();
/// for (bid, block) in f.blocks() {
///     for inst in block.insts() {
///         println!("{bid}: ({}) {}", inst.id, f.op_to_string(&inst.op));
///     }
/// }
/// assert_eq!(f.block(f.entry()).len(), 3);
/// ```
#[derive(Clone, Copy)]
pub struct BlockRef<'a> {
    f: &'a Function,
    data: &'a BlockData,
    id: BlockId,
}

impl<'a> BlockRef<'a> {
    /// The id of the viewed block.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The block's label (used by the printer and parser; unique within a
    /// function).
    pub fn label(&self) -> &'a str {
        &self.data.label
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.data.list.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.data.list.is_empty()
    }

    /// The block's ordered arena indices.
    pub fn indices(&self) -> &'a [InstIdx] {
        &self.data.list
    }

    /// The block's instructions in order.
    pub fn insts(&self) -> Insts<'a> {
        Insts {
            f: self.f,
            iter: self.data.list.iter(),
        }
    }

    /// The instruction at list position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn inst_at(&self, pos: usize) -> &'a Inst {
        self.f.inst(self.data.list[pos])
    }

    /// The arena index at list position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn idx_at(&self, pos: usize) -> InstIdx {
        self.data.list[pos]
    }

    /// The final instruction, if any.
    pub fn last(&self) -> Option<&'a Inst> {
        self.data.list.last().map(|&ix| self.f.inst(ix))
    }

    /// Finds the position of an instruction by id.
    pub fn position(&self, id: InstId) -> Option<usize> {
        self.data
            .list
            .iter()
            .position(|&ix| self.f.inst(ix).id == id)
    }

    /// Whether control can fall through past the end of this block to the
    /// next block in layout order.
    pub fn falls_through(&self) -> bool {
        match self.last() {
            Some(inst) => !inst.op.is_block_end(),
            None => true,
        }
    }
}

/// Iterator over a block's instructions (see [`BlockRef::insts`]).
pub struct Insts<'a> {
    f: &'a Function,
    iter: std::slice::Iter<'a, InstIdx>,
}

impl<'a> Iterator for Insts<'a> {
    type Item = &'a Inst;

    fn next(&mut self) -> Option<&'a Inst> {
        self.iter.next().map(|&ix| self.f.inst(ix))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl DoubleEndedIterator for Insts<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.iter.next_back().map(|&ix| self.f.inst(ix))
    }
}

impl ExactSizeIterator for Insts<'_> {}

/// A mutating view of one basic block (see [`Function::block_mut`]).
///
/// Structural edits (push/insert/remove/reorder) rewrite the block's
/// index list and allocate or free arena slots; payload edits go through
/// [`BlockMut::inst_mut`]. Both copy shared copy-on-write state first, so
/// mutating a block never disturbs a [`Function::snapshot`].
pub struct BlockMut<'a> {
    f: &'a mut Function,
    id: BlockId,
}

impl BlockMut<'_> {
    fn data(&mut self) -> &mut BlockData {
        Arc::make_mut(&mut self.f.blocks[self.id.index()])
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.f.blocks[self.id.index()].list.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.f.blocks[self.id.index()].list.is_empty()
    }

    /// Finds the position of an instruction by id.
    pub fn position(&self, id: InstId) -> Option<usize> {
        self.f.block(self.id).position(id)
    }

    /// Renames the block. Transformation passes that clone blocks (loop
    /// unrolling, rotation) use this to keep labels unique; callers must
    /// re-[`verify`](Function::verify) afterwards.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.data().label = label.into();
    }

    /// Appends an instruction, returning its arena index.
    pub fn push(&mut self, inst: Inst) -> InstIdx {
        let ix = self.f.arena.alloc(inst);
        self.data().list.push(ix);
        ix
    }

    /// Inserts an instruction at list position `pos`, returning its arena
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    pub fn insert(&mut self, pos: usize, inst: Inst) -> InstIdx {
        let ix = self.f.arena.alloc(inst);
        self.data().list.insert(pos, ix);
        ix
    }

    /// Removes and returns the instruction with the given id, freeing its
    /// arena slot, or `None` if it is not in this block.
    pub fn remove(&mut self, id: InstId) -> Option<Inst> {
        let pos = self.position(id)?;
        Some(self.remove_at(pos))
    }

    /// Removes and returns the instruction at list position `pos`,
    /// freeing its arena slot.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn remove_at(&mut self, pos: usize) -> Inst {
        let ix = self.data().list.remove(pos);
        self.f
            .arena
            .remove(ix)
            .expect("block list holds live indices")
    }

    /// Mutable access to the instruction at list position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn inst_mut(&mut self, pos: usize) -> &mut Inst {
        let ix = self.f.blocks[self.id.index()].list[pos];
        self.f.inst_mut(ix)
    }

    /// Keeps only the instructions for which `pred` returns `true`,
    /// freeing the others' arena slots. Order is preserved.
    pub fn retain(&mut self, mut pred: impl FnMut(&Inst) -> bool) {
        let list: Vec<InstIdx> = self.f.blocks[self.id.index()].list.clone();
        let mut kept = Vec::with_capacity(list.len());
        for ix in list {
            if pred(self.f.inst(ix)) {
                kept.push(ix);
            } else {
                self.f
                    .arena
                    .remove(ix)
                    .expect("block list holds live indices");
            }
        }
        self.data().list = kept;
    }

    /// Drops every instruction from list position `n` on, freeing their
    /// arena slots.
    pub fn truncate(&mut self, n: usize) {
        while self.len() > n {
            let pos = self.len() - 1;
            self.remove_at(pos);
        }
    }

    /// Reorders the block's instructions by a sort key. The sort is
    /// stable and purely an index permutation — no payload moves.
    pub fn sort_by_key<K: Ord>(&mut self, mut key: impl FnMut(&Inst) -> K) {
        let mut pairs: Vec<(K, InstIdx)> = self.f.blocks[self.id.index()]
            .list
            .iter()
            .map(|&ix| (key(self.f.inst(ix)), ix))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let data = self.data();
        for (slot, (_, ix)) in data.list.iter_mut().zip(pairs) {
            *slot = ix;
        }
    }

    /// Reorders the block to match `order`, which must list exactly the
    /// ids currently in the block.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the block's ids.
    pub fn set_order(&mut self, order: &[InstId]) {
        let current = &self.f.blocks[self.id.index()].list;
        assert_eq!(order.len(), current.len(), "set_order length mismatch");
        let mut by_id: HashMap<InstId, InstIdx> =
            current.iter().map(|&ix| (self.f.inst(ix).id, ix)).collect();
        let list: Vec<InstIdx> = order
            .iter()
            .map(|id| by_id.remove(id).expect("set_order: id not in block"))
            .collect();
        self.data().list = list;
    }
}

impl Function {
    /// Creates an empty function (no blocks yet).
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            arena: InstArena::default(),
            blocks: Vec::new(),
            symbols: Vec::new(),
            next_inst: 0,
            next_reg: [0; 3],
            dup_origins: std::collections::BTreeMap::new(),
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block (always the first block in layout order).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.list.len()).sum()
    }

    /// An exclusive upper bound on instruction id indices, usable to size
    /// dense side tables.
    pub fn inst_id_bound(&self) -> usize {
        self.next_inst as usize
    }

    /// The blocks in layout order, as read-only views.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, BlockRef<'_>)> {
        self.blocks.iter().enumerate().map(|(i, data)| {
            let id = BlockId::new(i as u32);
            (id, BlockRef { f: self, data, id })
        })
    }

    /// All block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + use<> {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// A read-only view of a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> BlockRef<'_> {
        BlockRef {
            f: self,
            data: &self.blocks[id.index()],
            id,
        }
    }

    /// A mutating view of a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> BlockMut<'_> {
        assert!(id.index() < self.blocks.len(), "block id out of range");
        BlockMut { f: self, id }
    }

    /// The instruction at an arena index.
    ///
    /// # Panics
    ///
    /// Panics if the index is stale (its slot was freed or reused).
    pub fn inst(&self, ix: InstIdx) -> &Inst {
        self.arena.get(ix).expect("stale instruction index")
    }

    /// The instruction at an arena index, or `None` if the index is stale
    /// (its slot was freed, or freed and reused under a newer generation).
    pub fn get_inst(&self, ix: InstIdx) -> Option<&Inst> {
        self.arena.get(ix)
    }

    /// Mutable access to the instruction at an arena index.
    ///
    /// # Panics
    ///
    /// Panics if the index is stale (its slot was freed or reused).
    pub fn inst_mut(&mut self, ix: InstIdx) -> &mut Inst {
        self.arena.get_mut(ix).expect("stale instruction index")
    }

    /// Applies `apply` to every instruction of block `b` in order.
    pub fn map_block_insts(&mut self, b: BlockId, mut apply: impl FnMut(&mut Inst)) {
        for p in 0..self.blocks[b.index()].list.len() {
            let ix = self.blocks[b.index()].list[p];
            apply(self.inst_mut(ix));
        }
    }

    fn for_each_inst_mut(&mut self, mut apply: impl FnMut(&mut Inst)) {
        for i in 0..self.blocks.len() {
            for p in 0..self.blocks[i].list.len() {
                let ix = self.blocks[i].list[p];
                apply(self.inst_mut(ix));
            }
        }
    }

    /// Moves the instruction `id` from block `from` to list position `at`
    /// of block `to`, preserving its id and arena slot.
    ///
    /// This is the scheduler's motion primitive: a pure index relink.
    /// The payload is never cloned or moved, so any [`InstIdx`] to the
    /// instruction stays valid, and the cost is bounded by the two
    /// blocks' list lengths (≤ the §6 region size cap), independent of
    /// operand payload size.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `from` or `at` is out of range for `to`.
    pub fn relink_inst(&mut self, id: InstId, from: BlockId, to: BlockId, at: usize) -> InstIdx {
        let pos = self
            .block(from)
            .position(id)
            .expect("relink_inst: id not in source block");
        let ix = Arc::make_mut(&mut self.blocks[from.index()])
            .list
            .remove(pos);
        Arc::make_mut(&mut self.blocks[to.index()])
            .list
            .insert(at, ix);
        ix
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Arc::new(BlockData::new(label)));
        id
    }

    /// Inserts a new empty block at `at` in layout order, shifting later
    /// blocks. All existing branch targets are remapped to follow the
    /// shift, so the control flow graph is unchanged (apart from any
    /// fall-through path that now passes through the new, empty block).
    pub fn insert_block_at(&mut self, at: usize, label: impl Into<String>) -> BlockId {
        assert!(at <= self.blocks.len(), "insert position out of range");
        self.blocks.insert(at, Arc::new(BlockData::new(label)));
        let shift = |t: BlockId| {
            if t.index() >= at {
                BlockId::new(t.index() as u32 + 1)
            } else {
                t
            }
        };
        self.for_each_inst_mut(|inst| inst.op.map_targets(shift));
        BlockId::new(at as u32)
    }

    /// The control-flow successors of a block: the explicit branch target
    /// (if any) followed by the fall-through block.
    pub fn succs(&self, id: BlockId) -> Vec<BlockId> {
        let block = self.block(id);
        let mut out = Vec::with_capacity(2);
        if let Some(last) = block.last() {
            if let Some(t) = last.op.branch_target() {
                out.push(t);
            }
        }
        if block.falls_through() {
            let next = id.index() + 1;
            if next < self.blocks.len() {
                let next = BlockId::new(next as u32);
                if !out.contains(&next) {
                    out.push(next);
                }
            }
        }
        out
    }

    /// Registers a memory symbol (or returns the existing id for `name`).
    pub fn add_symbol(&mut self, name: impl Into<String>) -> SymId {
        let name = name.into();
        if let Some(i) = self.symbols.iter().position(|s| *s == name) {
            return SymId::new(i as u32);
        }
        let id = SymId::new(self.symbols.len() as u32);
        self.symbols.push(name);
        id
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn symbol_name(&self, id: SymId) -> &str {
        &self.symbols[id.index()]
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<SymId> {
        self.symbols
            .iter()
            .position(|s| s == name)
            .map(|i| SymId::new(i as u32))
    }

    /// All symbols.
    pub fn symbols(&self) -> impl Iterator<Item = (SymId, &str)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymId::new(i as u32), s.as_str()))
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_inst_id(&mut self) -> InstId {
        let id = InstId::new(self.next_inst);
        self.next_inst += 1;
        id
    }

    /// The next index [`Function::fresh_reg`] will hand out for each
    /// class, in `[Gpr, Fpr, Cr]` order. Snapshotting these counters
    /// around a transformation identifies exactly the registers the
    /// transformation allocated — the parallel scheduler uses this to
    /// renumber per-worker allocations into one deterministic sequence.
    pub fn reg_counters(&self) -> [u32; 3] {
        self.next_reg
    }

    /// Allocates a fresh symbolic register of `class`.
    pub fn fresh_reg(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::Gpr => 0,
            RegClass::Fpr => 1,
            RegClass::Cr => 2,
        };
        let r = Reg::new(class, self.next_reg[slot]);
        self.next_reg[slot] += 1;
        r
    }

    /// Restores the allocator counters exactly — the canonical
    /// deserializer uses this so a decoded function hands out the same
    /// fresh ids the original would have (the counters can legitimately
    /// run ahead of the ids still present, e.g. after dead code removal).
    pub(crate) fn set_allocators(&mut self, next_inst: u32, next_reg: [u32; 3]) {
        self.next_inst = next_inst;
        self.next_reg = next_reg;
    }

    /// Ensures future [`Function::fresh_reg`] / [`Function::fresh_inst_id`]
    /// calls do not collide with ids already present. Used after parsing
    /// and after pasting instructions in by hand.
    pub fn recompute_allocators(&mut self) {
        let mut next_inst = 0u32;
        let mut next_reg = [0u32; 3];
        for (_, inst) in self.insts() {
            next_inst = next_inst.max(inst.id.index() as u32 + 1);
            for r in inst.op.defs().into_iter().chain(inst.op.uses()) {
                let slot = match r.class() {
                    RegClass::Gpr => 0,
                    RegClass::Fpr => 1,
                    RegClass::Cr => 2,
                };
                next_reg[slot] = next_reg[slot].max(r.index() + 1);
            }
        }
        self.next_inst = self.next_inst.max(next_inst);
        for (slot, seen) in self.next_reg.iter_mut().zip(next_reg) {
            *slot = (*slot).max(seen);
        }
    }

    /// Iterates over every instruction with its containing block.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> {
        self.blocks.iter().enumerate().flat_map(move |(i, data)| {
            data.list
                .iter()
                .map(move |&ix| (BlockId::new(i as u32), self.inst(ix)))
        })
    }

    /// Finds an instruction by id, returning its block and position.
    pub fn find_inst(&self, id: InstId) -> Option<(BlockId, usize)> {
        for (bid, b) in self.blocks() {
            if let Some(pos) = b.position(id) {
                return Some((bid, pos));
            }
        }
        None
    }

    /// Appends a clone of block `src`'s instructions (with fresh ids) into
    /// block `dst`, returning the mapping from original ids to clones.
    /// Branch targets are copied verbatim; callers performing unrolling or
    /// rotation remap them afterwards via [`Op::map_targets`].
    pub fn clone_insts_into(&mut self, src: BlockId, dst: BlockId) -> Vec<(InstId, InstId)> {
        let pairs: Vec<(InstId, Op)> = self
            .block(src)
            .insts()
            .map(|i| (i.id, i.op.clone()))
            .collect();
        let mut map = Vec::with_capacity(pairs.len());
        for (orig, op) in pairs {
            let id = self.fresh_inst_id();
            self.block_mut(dst).push(Inst::new(id, op));
            map.push((orig, id));
        }
        map
    }

    /// Deletes every block that is unreachable from the entry (following
    /// [`Function::succs`]) and remaps the surviving branch targets,
    /// freeing the removed instructions' arena slots. Returns the number
    /// of blocks removed.
    ///
    /// Fall-through edges are preserved: a block only falls through into
    /// its layout successor, and a fall-through target is by definition
    /// reachable whenever its predecessor is, so deleting unreachable
    /// blocks never separates a block from its fall-through successor.
    /// Test-case minimizers use this to clean up after redirecting or
    /// deleting branches.
    pub fn remove_unreachable_blocks(&mut self) -> usize {
        if self.blocks.is_empty() {
            return 0;
        }
        let mut reachable = vec![false; self.blocks.len()];
        let mut work = vec![self.entry()];
        reachable[self.entry().index()] = true;
        while let Some(b) = work.pop() {
            for s in self.succs(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    work.push(s);
                }
            }
        }
        let removed = reachable.iter().filter(|r| !**r).count();
        if removed == 0 {
            return 0;
        }
        let mut remap = vec![BlockId::new(0); self.blocks.len()];
        let mut next = 0u32;
        for (i, live) in reachable.iter().enumerate() {
            if *live {
                remap[i] = BlockId::new(next);
                next += 1;
            }
        }
        let mut kept = Vec::with_capacity(next as usize);
        for (i, block) in std::mem::take(&mut self.blocks).into_iter().enumerate() {
            if reachable[i] {
                kept.push(block);
            } else {
                for &ix in &block.list {
                    self.arena
                        .remove(ix)
                        .expect("block list holds live indices");
                }
            }
        }
        self.blocks = kept;
        self.for_each_inst_mut(|inst| inst.op.map_targets(|t| remap[t.index()]));
        removed
    }

    /// All registers mentioned anywhere in the function.
    pub fn all_regs(&self) -> Vec<Reg> {
        let mut regs: Vec<Reg> = self
            .insts()
            .flat_map(|(_, i)| i.op.defs().into_iter().chain(i.op.uses()))
            .collect();
        regs.sort();
        regs.dedup();
        regs
    }

    /// A cheap copy-on-write snapshot of this function.
    ///
    /// Snapshotting bumps the reference counts of the arena chunks and
    /// block lists instead of cloning instruction payloads, so its cost
    /// is O(blocks + instructions/64) — this is what lets each `--jobs`
    /// worker take whole-function scratch without deep clones. The two
    /// functions then diverge copy-on-write: mutating either side copies
    /// only the touched 64-slot chunk or block list.
    ///
    /// ```
    /// use gis_ir::parse_function;
    ///
    /// let f = parse_function("func t\ne:\n LI r0=1\n RET\n").unwrap();
    /// let mut scratch = f.snapshot();
    /// let b = scratch.entry();
    /// scratch.block_mut(b).remove_at(0);
    /// assert_eq!(scratch.num_insts(), 1);
    /// assert_eq!(f.num_insts(), 2, "the original is untouched");
    /// ```
    pub fn snapshot(&self) -> Function {
        self.clone()
    }

    /// Adopts block `b` from `src`, a diverged [`Function::snapshot`] of
    /// this function: this function's block (label and index list) is
    /// replaced by `src`'s, and when `copy_payloads` is set the payloads
    /// of the adopted instructions are copied across too.
    ///
    /// This is the zero-clone merge primitive of the parallel scheduler:
    /// scheduling only *relinks* indices (and, when renaming fired,
    /// edits payloads in place — never allocating or freeing slots), so
    /// a worker's result block can be adopted by swapping one `Arc` and,
    /// only when the worker renamed, copying the touched payloads.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the two functions' arenas are not
    /// slot-aligned, and at payload copy if an adopted index is stale on
    /// either side.
    pub fn adopt_block_from(&mut self, src: &Function, b: BlockId, copy_payloads: bool) {
        debug_assert_eq!(
            self.arena.slots_len(),
            src.arena.slots_len(),
            "adopt_block_from requires slot-aligned arenas"
        );
        let src_block = &src.blocks[b.index()];
        if copy_payloads {
            for &ix in &src_block.list {
                self.arena.adopt_payload(&src.arena, ix);
            }
        }
        self.blocks[b.index()] = Arc::clone(src_block);
    }

    /// Records that `copy` was minted by duplicating `origin`. Chains are
    /// flattened: if `origin` is itself a recorded copy, `copy` maps to
    /// `origin`'s root, so [`Function::dup_origin`] is always one hop.
    pub fn record_dup_origin(&mut self, copy: InstId, origin: InstId) {
        let root = self.dup_origin(origin).unwrap_or(origin);
        self.dup_origins.insert(copy, root);
    }

    /// The root original `id` was duplicated from, if `id` is a recorded
    /// duplication copy.
    pub fn dup_origin(&self, id: InstId) -> Option<InstId> {
        self.dup_origins.get(&id).copied()
    }

    /// The root identity of `id` for redundancy checks: its recorded
    /// duplication origin, or `id` itself when it is not a copy.
    pub fn dup_root(&self, id: InstId) -> InstId {
        self.dup_origin(id).unwrap_or(id)
    }

    /// Every recorded `(copy, root origin)` pair, ordered by copy id.
    pub fn dup_origins(&self) -> impl Iterator<Item = (InstId, InstId)> + '_ {
        self.dup_origins.iter().map(|(&c, &o)| (c, o))
    }

    /// Number of live instructions in the arena (equals
    /// [`Function::num_insts`] as long as every list entry is live).
    pub fn arena_live(&self) -> usize {
        self.arena.len()
    }

    /// Total arena slots ever allocated (live + freed). Grows on alloc
    /// when no freed slot is available; never shrinks. Slot-count
    /// equality is the precondition for [`Function::adopt_block_from`].
    pub fn arena_slots(&self) -> usize {
        self.arena.slots_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CondBit, Op};

    fn two_block_function() -> Function {
        let mut f = Function::new("t");
        let b0 = f.add_block("CL.0");
        let b1 = f.add_block("CL.1");
        let id0 = f.fresh_inst_id();
        f.block_mut(b0).push(Inst::new(
            id0,
            Op::BranchCond {
                target: b1,
                cr: Reg::cr(0),
                bit: CondBit::Lt,
                when: true,
            },
        ));
        let id1 = f.fresh_inst_id();
        f.block_mut(b1).push(Inst::new(id1, Op::Ret));
        f
    }

    #[test]
    fn succs_branch_and_fallthrough() {
        let f = two_block_function();
        // Conditional branch to BL1, fall-through also BL1: deduplicated.
        assert_eq!(f.succs(BlockId::new(0)), vec![BlockId::new(1)]);
        assert!(f.succs(BlockId::new(1)).is_empty());
    }

    #[test]
    fn fallthrough_rules() {
        let mut f = Function::new("t");
        let b = f.add_block("CL.0");
        assert!(f.block(b).falls_through(), "empty blocks fall through");
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(
            id,
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 1,
            },
        ));
        assert!(f.block(b).falls_through());
        let id = f.fresh_inst_id();
        f.block_mut(b).push(Inst::new(id, Op::Ret));
        assert!(!f.block(b).falls_through());
    }

    #[test]
    fn remove_by_id_frees_the_slot() {
        let mut f = Function::new("t");
        let b = f.add_block("x");
        f.block_mut(b).push(Inst::new(
            InstId::new(4),
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm: 1,
            },
        ));
        f.block_mut(b).push(Inst::new(InstId::new(9), Op::Ret));
        let stale = f.block(b).idx_at(0);
        let removed = f.block_mut(b).remove(InstId::new(4)).expect("present");
        assert_eq!(removed.id, InstId::new(4));
        assert_eq!(f.block(b).len(), 1);
        assert!(f.block_mut(b).remove(InstId::new(4)).is_none());
        assert!(f.get_inst(stale).is_none(), "slot freed");
        assert_eq!(f.arena_live(), 1);
    }

    #[test]
    fn relink_preserves_identity_and_slot() {
        let mut f = two_block_function();
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        let id = f.fresh_inst_id();
        let ix = f.block_mut(b1).insert(
            0,
            Inst::new(
                id,
                Op::LoadImm {
                    rt: Reg::gpr(0),
                    imm: 5,
                },
            ),
        );
        let moved = f.relink_inst(id, b1, b0, 0);
        assert_eq!(moved, ix, "same arena slot after motion");
        assert_eq!(f.block(b0).inst_at(0).id, id);
        assert_eq!(f.block(b1).len(), 1);
        assert!(f.get_inst(ix).is_some(), "index stays valid across motion");
    }

    #[test]
    fn snapshot_is_copy_on_write() {
        let mut f = two_block_function();
        let snap = f.snapshot();
        let b1 = BlockId::new(1);
        let id = f.fresh_inst_id();
        f.block_mut(b1).insert(
            0,
            Inst::new(
                id,
                Op::LoadImm {
                    rt: Reg::gpr(3),
                    imm: 1,
                },
            ),
        );
        assert_eq!(f.block(b1).len(), 2);
        assert_eq!(snap.block(b1).len(), 1, "snapshot unaffected");
        assert_eq!(snap.num_insts(), 2);
    }

    #[test]
    fn adopt_block_takes_list_and_payloads() {
        let f = two_block_function();
        let mut worker = f.snapshot();
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        // The worker moves the branchless path: relink I1's RET stays,
        // but rename-style payload edits must be adoptable too.
        if let Op::BranchCond { bit, .. } = &mut worker.block_mut(b0).inst_mut(0).op {
            *bit = CondBit::Gt;
        }
        let mut master = f.snapshot();
        master.adopt_block_from(&worker, b0, true);
        master.adopt_block_from(&worker, b1, false);
        match &master.block(b0).inst_at(0).op {
            Op::BranchCond { bit, .. } => assert_eq!(*bit, CondBit::Gt),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn symbols_are_interned() {
        let mut f = Function::new("t");
        let a = f.add_symbol("a");
        let b = f.add_symbol("b");
        let a2 = f.add_symbol("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(f.symbol_name(a), "a");
        assert_eq!(f.symbol("b"), Some(b));
        assert_eq!(f.symbol("c"), None);
    }

    #[test]
    fn recompute_allocators_avoids_collisions() {
        let mut f = Function::new("t");
        let b0 = f.add_block("e");
        f.block_mut(b0).push(Inst::new(
            InstId::new(7),
            Op::LoadImm {
                rt: Reg::gpr(12),
                imm: 0,
            },
        ));
        f.recompute_allocators();
        assert_eq!(f.fresh_inst_id(), InstId::new(8));
        assert_eq!(f.fresh_reg(RegClass::Gpr), Reg::gpr(13));
        assert_eq!(f.fresh_reg(RegClass::Cr), Reg::cr(0));
    }

    #[test]
    fn insert_block_remaps_targets() {
        let mut f = two_block_function();
        let inserted = f.insert_block_at(1, "CL.mid");
        assert_eq!(inserted, BlockId::new(1));
        // The branch in block 0 originally targeted BL1 (now BL2).
        let tgt = f
            .block(BlockId::new(0))
            .inst_at(0)
            .op
            .branch_target()
            .unwrap();
        assert_eq!(tgt, BlockId::new(2));
        // Fall-through now passes through the empty inserted block.
        assert_eq!(f.succs(BlockId::new(1)), vec![BlockId::new(2)]);
    }

    #[test]
    fn remove_unreachable_blocks_remaps_targets() {
        // e -> B over `dead` to `tail`; `dead` is unreachable.
        let mut f = Function::new("t");
        let e = f.add_block("e");
        let dead = f.add_block("dead");
        let tail = f.add_block("tail");
        let id = f.fresh_inst_id();
        f.block_mut(e)
            .push(Inst::new(id, Op::Branch { target: tail }));
        let id = f.fresh_inst_id();
        f.block_mut(dead).push(Inst::new(id, Op::Ret));
        let id = f.fresh_inst_id();
        f.block_mut(tail).push(Inst::new(id, Op::Ret));
        assert_eq!(f.remove_unreachable_blocks(), 1);
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.arena_live(), 2, "dead block's slot was freed");
        let tgt = f.block(e).inst_at(0).op.branch_target().unwrap();
        assert_eq!(
            tgt,
            BlockId::new(1),
            "target shifted past the deleted block"
        );
        assert!(f.verify().is_ok());
        assert_eq!(f.remove_unreachable_blocks(), 0, "idempotent");
    }

    #[test]
    fn find_inst_and_clone() {
        let mut f = two_block_function();
        assert_eq!(f.find_inst(InstId::new(1)), Some((BlockId::new(1), 0)));
        let fresh = f.add_block("copy");
        let map = f.clone_insts_into(BlockId::new(1), fresh);
        assert_eq!(map.len(), 1);
        assert_ne!(map[0].0, map[0].1);
        assert_eq!(f.block(fresh).len(), 1);
    }

    #[test]
    fn set_order_and_sort_by_key_permute_indices() {
        let mut f = Function::new("t");
        let b = f.add_block("e");
        for imm in 0..3 {
            let id = f.fresh_inst_id();
            f.block_mut(b).push(Inst::new(
                id,
                Op::LoadImm {
                    rt: Reg::gpr(imm as u32),
                    imm,
                },
            ));
        }
        let before: Vec<InstIdx> = f.block(b).indices().to_vec();
        f.block_mut(b)
            .set_order(&[InstId::new(2), InstId::new(0), InstId::new(1)]);
        let order: Vec<InstId> = f.block(b).insts().map(|i| i.id).collect();
        assert_eq!(order, vec![InstId::new(2), InstId::new(0), InstId::new(1)]);
        f.block_mut(b).sort_by_key(|i| i.id);
        let order: Vec<InstId> = f.block(b).insts().map(|i| i.id).collect();
        assert_eq!(order, vec![InstId::new(0), InstId::new(1), InstId::new(2)]);
        let after: Vec<InstIdx> = f.block(b).indices().to_vec();
        assert_eq!(before, after, "pure permutation, no reallocation");
    }
}
