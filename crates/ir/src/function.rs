//! Functions: layout-ordered blocks plus symbol and id allocation.

use crate::block::{Block, BlockId, Inst, InstId};
use crate::op::Op;
use crate::reg::{Reg, RegClass};
use std::fmt;

/// Identifies a memory symbol (array / global) within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(u32);

impl SymId {
    /// Creates a symbol id from a raw index.
    pub fn new(index: u32) -> Self {
        SymId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A function: a name, a layout-ordered list of basic blocks (the entry is
/// the first block), and the allocation state for fresh instruction ids and
/// symbolic registers.
///
/// Construct functions with [`FunctionBuilder`](crate::FunctionBuilder) or
/// [`parse_function`](crate::parse_function); transformation passes mutate
/// them in place and re-check [`Function::verify`].
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    blocks: Vec<Block>,
    symbols: Vec<String>,
    next_inst: u32,
    next_reg: [u32; 3],
}

impl Function {
    /// Creates an empty function (no blocks yet).
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: Vec::new(),
            symbols: Vec::new(),
            next_inst: 0,
            next_reg: [0; 3],
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block (always the first block in layout order).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// An exclusive upper bound on instruction id indices, usable to size
    /// dense side tables.
    pub fn inst_id_bound(&self) -> usize {
        self.next_inst as usize
    }

    /// The blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// All block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + use<> {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// A block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Block::new(label));
        id
    }

    /// Inserts a new empty block at `at` in layout order, shifting later
    /// blocks. All existing branch targets are remapped to follow the
    /// shift, so the control flow graph is unchanged (apart from any
    /// fall-through path that now passes through the new, empty block).
    pub fn insert_block_at(&mut self, at: usize, label: impl Into<String>) -> BlockId {
        assert!(at <= self.blocks.len(), "insert position out of range");
        self.blocks.insert(at, Block::new(label));
        let shift = |t: BlockId| {
            if t.index() >= at {
                BlockId::new(t.index() as u32 + 1)
            } else {
                t
            }
        };
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if i == at {
                continue;
            }
            for inst in b.insts_mut() {
                inst.op.map_targets(shift);
            }
        }
        BlockId::new(at as u32)
    }

    /// The control-flow successors of a block: the explicit branch target
    /// (if any) followed by the fall-through block.
    pub fn succs(&self, id: BlockId) -> Vec<BlockId> {
        let block = self.block(id);
        let mut out = Vec::with_capacity(2);
        if let Some(last) = block.last() {
            if let Some(t) = last.op.branch_target() {
                out.push(t);
            }
        }
        if block.falls_through() {
            let next = id.index() + 1;
            if next < self.blocks.len() {
                let next = BlockId::new(next as u32);
                if !out.contains(&next) {
                    out.push(next);
                }
            }
        }
        out
    }

    /// Registers a memory symbol (or returns the existing id for `name`).
    pub fn add_symbol(&mut self, name: impl Into<String>) -> SymId {
        let name = name.into();
        if let Some(i) = self.symbols.iter().position(|s| *s == name) {
            return SymId::new(i as u32);
        }
        let id = SymId::new(self.symbols.len() as u32);
        self.symbols.push(name);
        id
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn symbol_name(&self, id: SymId) -> &str {
        &self.symbols[id.index()]
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<SymId> {
        self.symbols
            .iter()
            .position(|s| s == name)
            .map(|i| SymId::new(i as u32))
    }

    /// All symbols.
    pub fn symbols(&self) -> impl Iterator<Item = (SymId, &str)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymId::new(i as u32), s.as_str()))
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_inst_id(&mut self) -> InstId {
        let id = InstId::new(self.next_inst);
        self.next_inst += 1;
        id
    }

    /// The next index [`Function::fresh_reg`] will hand out for each
    /// class, in `[Gpr, Fpr, Cr]` order. Snapshotting these counters
    /// around a transformation identifies exactly the registers the
    /// transformation allocated — the parallel scheduler uses this to
    /// renumber per-worker allocations into one deterministic sequence.
    pub fn reg_counters(&self) -> [u32; 3] {
        self.next_reg
    }

    /// Allocates a fresh symbolic register of `class`.
    pub fn fresh_reg(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::Gpr => 0,
            RegClass::Fpr => 1,
            RegClass::Cr => 2,
        };
        let r = Reg::new(class, self.next_reg[slot]);
        self.next_reg[slot] += 1;
        r
    }

    /// Restores the allocator counters exactly — the canonical
    /// deserializer uses this so a decoded function hands out the same
    /// fresh ids the original would have (the counters can legitimately
    /// run ahead of the ids still present, e.g. after dead code removal).
    pub(crate) fn set_allocators(&mut self, next_inst: u32, next_reg: [u32; 3]) {
        self.next_inst = next_inst;
        self.next_reg = next_reg;
    }

    /// Ensures future [`Function::fresh_reg`] / [`Function::fresh_inst_id`]
    /// calls do not collide with ids already present. Used after parsing
    /// and after pasting instructions in by hand.
    pub fn recompute_allocators(&mut self) {
        let mut next_inst = 0u32;
        let mut next_reg = [0u32; 3];
        for b in &self.blocks {
            for inst in b.insts() {
                next_inst = next_inst.max(inst.id.index() as u32 + 1);
                for r in inst.op.defs().into_iter().chain(inst.op.uses()) {
                    let slot = match r.class() {
                        RegClass::Gpr => 0,
                        RegClass::Fpr => 1,
                        RegClass::Cr => 2,
                    };
                    next_reg[slot] = next_reg[slot].max(r.index() + 1);
                }
            }
        }
        self.next_inst = self.next_inst.max(next_inst);
        for (slot, seen) in self.next_reg.iter_mut().zip(next_reg) {
            *slot = (*slot).max(seen);
        }
    }

    /// Iterates over every instruction with its containing block.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> {
        self.blocks()
            .flat_map(|(id, b)| b.insts().iter().map(move |i| (id, i)))
    }

    /// Finds an instruction by id, returning its block and position.
    pub fn find_inst(&self, id: InstId) -> Option<(BlockId, usize)> {
        for (bid, b) in self.blocks() {
            if let Some(pos) = b.position(id) {
                return Some((bid, pos));
            }
        }
        None
    }

    /// Appends a clone of block `src`'s instructions (with fresh ids) into
    /// block `dst`, returning the mapping from original ids to clones.
    /// Branch targets are copied verbatim; callers performing unrolling or
    /// rotation remap them afterwards via [`Op::map_targets`].
    pub fn clone_insts_into(&mut self, src: BlockId, dst: BlockId) -> Vec<(InstId, InstId)> {
        let cloned: Vec<Op> = self
            .block(src)
            .insts()
            .iter()
            .map(|i| i.op.clone())
            .collect();
        let src_ids: Vec<InstId> = self.block(src).insts().iter().map(|i| i.id).collect();
        let mut map = Vec::with_capacity(cloned.len());
        for (orig, op) in src_ids.into_iter().zip(cloned) {
            let id = self.fresh_inst_id();
            self.block_mut(dst).push(Inst::new(id, op));
            map.push((orig, id));
        }
        map
    }

    /// Deletes every block that is unreachable from the entry (following
    /// [`Function::succs`]) and remaps the surviving branch targets.
    /// Returns the number of blocks removed.
    ///
    /// Fall-through edges are preserved: a block only falls through into
    /// its layout successor, and a fall-through target is by definition
    /// reachable whenever its predecessor is, so deleting unreachable
    /// blocks never separates a block from its fall-through successor.
    /// Test-case minimizers use this to clean up after redirecting or
    /// deleting branches.
    pub fn remove_unreachable_blocks(&mut self) -> usize {
        if self.blocks.is_empty() {
            return 0;
        }
        let mut reachable = vec![false; self.blocks.len()];
        let mut work = vec![self.entry()];
        reachable[self.entry().index()] = true;
        while let Some(b) = work.pop() {
            for s in self.succs(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    work.push(s);
                }
            }
        }
        let removed = reachable.iter().filter(|r| !**r).count();
        if removed == 0 {
            return 0;
        }
        let mut remap = vec![BlockId::new(0); self.blocks.len()];
        let mut next = 0u32;
        for (i, live) in reachable.iter().enumerate() {
            if *live {
                remap[i] = BlockId::new(next);
                next += 1;
            }
        }
        let mut kept = Vec::with_capacity(next as usize);
        for (i, block) in std::mem::take(&mut self.blocks).into_iter().enumerate() {
            if reachable[i] {
                kept.push(block);
            }
        }
        for block in &mut kept {
            for inst in block.insts_mut() {
                inst.op.map_targets(|t| remap[t.index()]);
            }
        }
        self.blocks = kept;
        removed
    }

    /// All registers mentioned anywhere in the function.
    pub fn all_regs(&self) -> Vec<Reg> {
        let mut regs: Vec<Reg> = self
            .insts()
            .flat_map(|(_, i)| i.op.defs().into_iter().chain(i.op.uses()))
            .collect();
        regs.sort();
        regs.dedup();
        regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CondBit, Op};

    fn two_block_function() -> Function {
        let mut f = Function::new("t");
        let b0 = f.add_block("CL.0");
        let b1 = f.add_block("CL.1");
        let id0 = f.fresh_inst_id();
        f.block_mut(b0).push(Inst::new(
            id0,
            Op::BranchCond {
                target: b1,
                cr: Reg::cr(0),
                bit: CondBit::Lt,
                when: true,
            },
        ));
        let id1 = f.fresh_inst_id();
        f.block_mut(b1).push(Inst::new(id1, Op::Ret));
        f
    }

    #[test]
    fn succs_branch_and_fallthrough() {
        let f = two_block_function();
        // Conditional branch to BL1, fall-through also BL1: deduplicated.
        assert_eq!(f.succs(BlockId::new(0)), vec![BlockId::new(1)]);
        assert!(f.succs(BlockId::new(1)).is_empty());
    }

    #[test]
    fn symbols_are_interned() {
        let mut f = Function::new("t");
        let a = f.add_symbol("a");
        let b = f.add_symbol("b");
        let a2 = f.add_symbol("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(f.symbol_name(a), "a");
        assert_eq!(f.symbol("b"), Some(b));
        assert_eq!(f.symbol("c"), None);
    }

    #[test]
    fn recompute_allocators_avoids_collisions() {
        let mut f = Function::new("t");
        let b0 = f.add_block("e");
        f.block_mut(b0).push(Inst::new(
            InstId::new(7),
            Op::LoadImm {
                rt: Reg::gpr(12),
                imm: 0,
            },
        ));
        f.recompute_allocators();
        assert_eq!(f.fresh_inst_id(), InstId::new(8));
        assert_eq!(f.fresh_reg(RegClass::Gpr), Reg::gpr(13));
        assert_eq!(f.fresh_reg(RegClass::Cr), Reg::cr(0));
    }

    #[test]
    fn insert_block_remaps_targets() {
        let mut f = two_block_function();
        let inserted = f.insert_block_at(1, "CL.mid");
        assert_eq!(inserted, BlockId::new(1));
        // The branch in block 0 originally targeted BL1 (now BL2).
        let tgt = f.block(BlockId::new(0)).insts()[0]
            .op
            .branch_target()
            .unwrap();
        assert_eq!(tgt, BlockId::new(2));
        // Fall-through now passes through the empty inserted block.
        assert_eq!(f.succs(BlockId::new(1)), vec![BlockId::new(2)]);
    }

    #[test]
    fn remove_unreachable_blocks_remaps_targets() {
        // e -> B over `dead` to `tail`; `dead` is unreachable.
        let mut f = Function::new("t");
        let e = f.add_block("e");
        let dead = f.add_block("dead");
        let tail = f.add_block("tail");
        let id = f.fresh_inst_id();
        f.block_mut(e)
            .push(Inst::new(id, Op::Branch { target: tail }));
        let id = f.fresh_inst_id();
        f.block_mut(dead).push(Inst::new(id, Op::Ret));
        let id = f.fresh_inst_id();
        f.block_mut(tail).push(Inst::new(id, Op::Ret));
        assert_eq!(f.remove_unreachable_blocks(), 1);
        assert_eq!(f.num_blocks(), 2);
        let tgt = f.block(e).insts()[0].op.branch_target().unwrap();
        assert_eq!(
            tgt,
            BlockId::new(1),
            "target shifted past the deleted block"
        );
        assert!(f.verify().is_ok());
        assert_eq!(f.remove_unreachable_blocks(), 0, "idempotent");
    }

    #[test]
    fn find_inst_and_clone() {
        let mut f = two_block_function();
        assert_eq!(f.find_inst(InstId::new(1)), Some((BlockId::new(1), 0)));
        let fresh = f.add_block("copy");
        let map = f.clone_insts_into(BlockId::new(1), fresh);
        assert_eq!(map.len(), 1);
        assert_ne!(map[0].0, map[0].1);
        assert_eq!(f.block(fresh).len(), 1);
    }
}
