//! Symbolic registers.

use std::fmt;

/// The architectural class of a register.
///
/// The RS/6000 splits its register file into general purpose (fixed point)
/// registers, floating point registers and the eight 4-bit condition
/// register fields. Scheduling happens over *symbolic* registers, so each
/// class is unbounded here; register allocation (out of scope for this
/// reproduction, as in the paper) later maps them onto the real file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General purpose (fixed point) register, printed `rN`.
    Gpr,
    /// Floating point register, printed `fN`.
    Fpr,
    /// Condition register field, printed `crN`.
    Cr,
}

impl RegClass {
    /// One-letter-ish prefix used by [`Reg`]'s `Display`.
    pub fn prefix(self) -> &'static str {
        match self {
            RegClass::Gpr => "r",
            RegClass::Fpr => "f",
            RegClass::Cr => "cr",
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegClass::Gpr => "gpr",
            RegClass::Fpr => "fpr",
            RegClass::Cr => "cr",
        };
        f.write_str(name)
    }
}

/// A symbolic register: a class plus an index within that class.
///
/// Registers are cheap value types; the scheduler manipulates them by the
/// thousands. `Display` prints the assembly spelling (`r12`, `f3`, `cr7`).
///
/// ```
/// use gis_ir::{Reg, RegClass};
///
/// let r = Reg::gpr(12);
/// assert_eq!(r.to_string(), "r12");
/// assert_eq!(r.class(), RegClass::Gpr);
/// assert_ne!(r, Reg::cr(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u32,
}

impl Reg {
    /// Creates a register of the given class and index.
    pub fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    /// Creates a general purpose register `rN`.
    pub fn gpr(index: u32) -> Self {
        Reg::new(RegClass::Gpr, index)
    }

    /// Creates a floating point register `fN`.
    pub fn fpr(index: u32) -> Self {
        Reg::new(RegClass::Fpr, index)
    }

    /// Creates a condition register field `crN`.
    pub fn cr(index: u32) -> Self {
        Reg::new(RegClass::Cr, index)
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Whether this is a condition register field.
    pub fn is_cr(self) -> bool {
        self.class == RegClass::Cr
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_spellings() {
        assert_eq!(Reg::gpr(0).to_string(), "r0");
        assert_eq!(Reg::fpr(31).to_string(), "f31");
        assert_eq!(Reg::cr(7).to_string(), "cr7");
    }

    #[test]
    fn classes_are_distinct_keys() {
        let mut set = HashSet::new();
        set.insert(Reg::gpr(1));
        set.insert(Reg::fpr(1));
        set.insert(Reg::cr(1));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn ordering_groups_by_class_then_index() {
        let mut v = vec![Reg::cr(0), Reg::gpr(2), Reg::gpr(1), Reg::fpr(9)];
        v.sort();
        assert_eq!(v, vec![Reg::gpr(1), Reg::gpr(2), Reg::fpr(9), Reg::cr(0)]);
    }
}
