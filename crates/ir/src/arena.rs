//! The generational instruction arena.
//!
//! Instructions are stored once, in per-function chunked slots; basic
//! blocks hold *index lists* into this arena ([`InstIdx`]). Code motion
//! between blocks therefore never moves, clones or re-allocates an
//! instruction payload — it relinks an index — and a parallel worker can
//! snapshot a whole function by bumping the reference counts of the
//! shared chunks ([`Function::snapshot`](crate::Function::snapshot))
//! instead of deep-cloning every operation.
//!
//! Indices are *generational*: freeing a slot bumps its generation, so a
//! stale [`InstIdx`] held across a removal can never silently read the
//! slot's next tenant. Lookups through a stale index return `None`:
//!
//! ```
//! use gis_ir::{parse_function, InstId};
//!
//! let mut f = parse_function("func t\ne:\n LI r0=1\n LI r1=2\n RET\n").unwrap();
//! let b = f.entry();
//! let stale = f.block(b).idx_at(0);
//! f.block_mut(b).remove(InstId::new(0)).unwrap();
//! assert!(f.get_inst(stale).is_none(), "generation bump rejects the stale index");
//! ```

use crate::block::Inst;
use std::fmt;
use std::sync::Arc;

/// Slots per copy-on-write chunk. Small enough that a rename touching
/// one instruction copies at most this many slots out of a shared
/// snapshot; large enough that snapshotting a function is a handful of
/// reference-count bumps per thousand instructions.
const CHUNK: usize = 64;

/// A stable, generational index of an instruction in its function's
/// arena.
///
/// An `InstIdx` stays valid across any number of motions and reorders —
/// only removing the instruction invalidates it (and bumps the slot's
/// generation so reuse is detected). Contrast with
/// [`InstId`](crate::InstId), the instruction's *name*: the id also
/// survives motion, but looking it up costs a scan of its block, while
/// an index is a direct O(1) arena access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstIdx {
    raw: u32,
    gen: u32,
}

impl InstIdx {
    /// The raw slot number. Slots are reused after a removal — two
    /// indices can share a slot across time, distinguished only by
    /// [`InstIdx::generation`].
    pub fn slot(self) -> usize {
        self.raw as usize
    }

    /// The slot generation this index was minted under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl fmt::Display for InstIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ix{}g{}", self.raw, self.gen)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    inst: Option<Inst>,
}

/// The per-function instruction store: chunked, generational, shared
/// copy-on-write between a function and its snapshots.
#[derive(Debug, Clone, Default)]
pub(crate) struct InstArena {
    chunks: Vec<Arc<Vec<Slot>>>,
    /// Freed slot numbers available for reuse (their generation was
    /// already bumped when they were freed).
    free: Vec<u32>,
    /// Number of live (occupied) slots.
    live: usize,
}

impl InstArena {
    /// Stores `inst`, reusing a freed slot when one exists.
    pub(crate) fn alloc(&mut self, inst: Inst) -> InstIdx {
        self.live += 1;
        if let Some(raw) = self.free.pop() {
            let slot = self.slot_mut(raw);
            debug_assert!(slot.inst.is_none(), "free list slot occupied");
            slot.inst = Some(inst);
            return InstIdx { raw, gen: slot.gen };
        }
        let raw = self.slots_len() as u32;
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let chunk = Arc::make_mut(self.chunks.last_mut().expect("chunk pushed"));
        chunk.push(Slot {
            gen: 0,
            inst: Some(inst),
        });
        InstIdx { raw, gen: 0 }
    }

    /// The instruction at `idx`, or `None` if the slot was freed (or
    /// freed and reused) since `idx` was minted.
    pub(crate) fn get(&self, idx: InstIdx) -> Option<&Inst> {
        let slot = self
            .chunks
            .get(idx.raw as usize / CHUNK)?
            .get(idx.raw as usize % CHUNK)?;
        if slot.gen != idx.gen {
            return None;
        }
        slot.inst.as_ref()
    }

    /// Mutable access to the instruction at `idx`; copies the owning
    /// chunk first when it is shared with a snapshot.
    pub(crate) fn get_mut(&mut self, idx: InstIdx) -> Option<&mut Inst> {
        let chunk = self.chunks.get_mut(idx.raw as usize / CHUNK)?;
        let slot = Arc::make_mut(chunk).get_mut(idx.raw as usize % CHUNK)?;
        if slot.gen != idx.gen {
            return None;
        }
        slot.inst.as_mut()
    }

    /// Frees the slot at `idx`, returning its instruction and bumping
    /// the generation so stale copies of `idx` are rejected from now on.
    pub(crate) fn remove(&mut self, idx: InstIdx) -> Option<Inst> {
        let chunk = self.chunks.get_mut(idx.raw as usize / CHUNK)?;
        let slot = Arc::make_mut(chunk).get_mut(idx.raw as usize % CHUNK)?;
        if slot.gen != idx.gen {
            return None;
        }
        let inst = slot.inst.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx.raw);
        self.live -= 1;
        Some(inst)
    }

    /// Number of live instructions.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + freed), for snapshot-alignment
    /// assertions: two arenas with equal `slots_len` that diverged only
    /// by copy-on-write edits address the same slots by the same indices.
    pub(crate) fn slots_len(&self) -> usize {
        match self.chunks.last() {
            Some(last) => (self.chunks.len() - 1) * CHUNK + last.len(),
            None => 0,
        }
    }

    /// Copies the payload at `idx` from `src` (a diverged snapshot of
    /// this arena) into this arena. Both sides must hold a live slot of
    /// the same generation at `idx`.
    pub(crate) fn adopt_payload(&mut self, src: &InstArena, idx: InstIdx) {
        let theirs = src.get(idx).expect("source snapshot holds the slot");
        let mine = self.get_mut(idx).expect("target arena holds the slot");
        if mine != theirs {
            *mine = theirs.clone();
        }
    }

    fn slot_mut(&mut self, raw: u32) -> &mut Slot {
        let chunk = &mut self.chunks[raw as usize / CHUNK];
        &mut Arc::make_mut(chunk)[raw as usize % CHUNK]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::InstId;
    use crate::op::Op;
    use crate::reg::Reg;

    fn li(id: u32, imm: i64) -> Inst {
        Inst::new(
            InstId::new(id),
            Op::LoadImm {
                rt: Reg::gpr(0),
                imm,
            },
        )
    }

    #[test]
    fn alloc_get_remove_round_trip() {
        let mut a = InstArena::default();
        let i0 = a.alloc(li(0, 10));
        let i1 = a.alloc(li(1, 20));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(i0).unwrap().id, InstId::new(0));
        assert_eq!(a.get(i1).unwrap().id, InstId::new(1));
        let removed = a.remove(i0).unwrap();
        assert_eq!(removed.id, InstId::new(0));
        assert_eq!(a.len(), 1);
        assert!(a.get(i0).is_none(), "freed slot unreadable");
        assert!(a.remove(i0).is_none(), "double free rejected");
    }

    #[test]
    fn reuse_bumps_generation_and_rejects_stale_indices() {
        let mut a = InstArena::default();
        let old = a.alloc(li(0, 1));
        a.remove(old).unwrap();
        let new = a.alloc(li(1, 2));
        assert_eq!(old.slot(), new.slot(), "slot is reused");
        assert_ne!(old.generation(), new.generation());
        assert!(a.get(old).is_none(), "stale index sees nothing");
        assert_eq!(a.get(new).unwrap().id, InstId::new(1));
        assert!(a.get_mut(old).is_none());
    }

    #[test]
    fn chunks_grow_past_one() {
        let mut a = InstArena::default();
        let idxs: Vec<InstIdx> = (0..(CHUNK as u32 * 2 + 3))
            .map(|i| a.alloc(li(i, 0)))
            .collect();
        assert_eq!(a.len(), CHUNK * 2 + 3);
        assert_eq!(a.slots_len(), CHUNK * 2 + 3);
        for (i, idx) in idxs.iter().enumerate() {
            assert_eq!(a.get(*idx).unwrap().id, InstId::new(i as u32));
        }
    }

    #[test]
    fn snapshots_share_until_written() {
        let mut a = InstArena::default();
        let idx = a.alloc(li(0, 7));
        let snap = a.clone();
        // Writing through the original diverges only the touched chunk;
        // the snapshot keeps seeing the old payload.
        if let Op::LoadImm { imm, .. } = &mut a.get_mut(idx).unwrap().op {
            *imm = 99;
        }
        assert!(matches!(
            snap.get(idx).unwrap().op,
            Op::LoadImm { imm: 7, .. }
        ));
        assert!(matches!(
            a.get(idx).unwrap().op,
            Op::LoadImm { imm: 99, .. }
        ));
        // Adopting the payload back copies the divergence.
        let mut master = snap.clone();
        master.adopt_payload(&a, idx);
        assert!(matches!(
            master.get(idx).unwrap().op,
            Op::LoadImm { imm: 99, .. }
        ));
    }
}
