//! Integration tests for the arena-backed representation: edge cases a
//! scheduling pass can hit (stale indices, empty blocks, single-inst
//! regions) and the canonical-encoding stability contract the serve
//! cache depends on.

use gis_ir::{from_canonical_bytes, parse_function, to_canonical_bytes, InstId, RegionView};

const SRC: &str = "func t\n\
    e:\n LI r0=1\n LI r1=2\n BT tail,cr0,0x1/lt\n\
    mid:\n AI r0=r0,1\n\
    tail:\n RET\n";

#[test]
fn stale_index_is_rejected_after_removal() {
    let mut f = parse_function(SRC).unwrap();
    let e = f.entry();
    let stale = f.block(e).idx_at(0);
    assert_eq!(f.inst(stale).id, InstId::new(0));

    let removed = f.block_mut(e).remove(InstId::new(0)).unwrap();
    assert_eq!(removed.id, InstId::new(0));
    assert!(f.get_inst(stale).is_none(), "generation bump rejects reuse");

    // The freed slot is recycled for the next allocation — under a new
    // generation, so the stale index still misses.
    f.block_mut(e).push(removed);
    assert!(f.get_inst(stale).is_none());
    assert_eq!(f.num_insts(), f.arena_live(), "list/arena agreement");
}

#[test]
fn empty_block_round_trips_and_relinks() {
    let mut f = parse_function(SRC).unwrap();
    let mid = f.block_ids().nth(1).unwrap();
    let tail = f.block_ids().nth(2).unwrap();

    // Drain `mid` by relinking its only instruction into `tail`.
    let id = f.block(mid).inst_at(0).id;
    f.relink_inst(id, mid, tail, 0);
    assert!(f.block(mid).is_empty());
    assert_eq!(f.block(tail).len(), 2);
    assert_eq!(f.num_insts(), f.arena_live());

    // An empty block prints, canon-encodes, and views cleanly.
    let v = RegionView::new(&f, vec![mid]);
    assert_eq!(v.num_insts(), 0);
    let bytes = to_canonical_bytes(&f);
    let back = from_canonical_bytes(&bytes).unwrap();
    assert!(back.block(mid).is_empty());
    assert_eq!(to_canonical_bytes(&back), bytes);
}

#[test]
fn single_instruction_region_view() {
    let f = parse_function(SRC).unwrap();
    let tail = f.block_ids().nth(2).unwrap();
    let v = RegionView::new(&f, vec![tail]);
    assert_eq!(v.num_blocks(), 1);
    assert_eq!(v.num_insts(), 1);
    let (b, inst) = v.insts().next().unwrap();
    assert_eq!(b, tail);
    assert!(inst.op.is_block_end());
}

#[test]
fn canonical_bytes_ignore_arena_layout() {
    // Two functions with identical program text but different arena slot
    // histories (one suffered a remove/re-push churn) must encode to the
    // same canonical bytes: identity is InstId, never slot numbers.
    let clean = parse_function(SRC).unwrap();
    let mut churned = parse_function(SRC).unwrap();
    let e = churned.entry();
    let inst = churned.block_mut(e).remove_at(0);
    churned.block_mut(e).insert(0, inst);
    assert_ne!(
        clean.block(e).idx_at(0),
        churned.block(e).idx_at(0),
        "the churned function really does use different slots"
    );
    assert_eq!(to_canonical_bytes(&clean), to_canonical_bytes(&churned));
    assert_eq!(format!("{clean}"), format!("{churned}"));
}

#[test]
fn snapshot_stays_slot_aligned_through_scheduling_mutations() {
    let master = parse_function(SRC).unwrap();
    let mut worker = master.snapshot();
    let e = worker.entry();

    // Scheduling-shaped mutations: permute a list, relink across blocks,
    // rewrite a payload. None allocate or free slots.
    worker.block_mut(e).sort_by_key(|i| std::cmp::Reverse(i.id));
    let tail = worker.block_ids().nth(2).unwrap();
    let mid = worker.block_ids().nth(1).unwrap();
    let id = worker.block(mid).inst_at(0).id;
    worker.relink_inst(id, mid, tail, 0);

    // Master is untouched, and every index the worker holds still names
    // the same slot in the master arena.
    assert_eq!(master.block(e).inst_at(0).id, InstId::new(0));
    for (b, _) in worker.insts() {
        for pos in 0..worker.block(b).len() {
            let ix = worker.block(b).idx_at(pos);
            let id = worker.block(b).inst_at(pos).id;
            assert_eq!(master.inst(ix).id, id, "slot-aligned at {ix}");
        }
    }

    // Adopting the worker's blocks reproduces its text on the master.
    let mut merged = master.snapshot();
    for b in worker.block_ids().collect::<Vec<_>>() {
        merged.adopt_block_from(&worker, b, false);
    }
    assert_eq!(format!("{merged}"), format!("{worker}"));
}
