//! Property: the textual form round-trips — `parse(print(f)) == f` for
//! arbitrary well-formed functions.

use gis_ir::{
    parse_function, CondBit, FpBinOp, Function, FxBinOp, Inst, MemRef, Op, Reg,
};
use proptest::prelude::*;

fn arb_gpr() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::gpr)
}

fn arb_fpr() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::fpr)
}

fn arb_cr() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(Reg::cr)
}

fn arb_bit() -> impl Strategy<Value = CondBit> {
    prop_oneof![Just(CondBit::Lt), Just(CondBit::Gt), Just(CondBit::Eq)]
}

fn arb_fx() -> impl Strategy<Value = FxBinOp> {
    prop_oneof![
        Just(FxBinOp::Add),
        Just(FxBinOp::Sub),
        Just(FxBinOp::Mul),
        Just(FxBinOp::Div),
        Just(FxBinOp::And),
        Just(FxBinOp::Or),
        Just(FxBinOp::Xor),
        Just(FxBinOp::Sll),
        Just(FxBinOp::Srl),
        Just(FxBinOp::Sra),
    ]
}

fn arb_fp() -> impl Strategy<Value = FpBinOp> {
    prop_oneof![
        Just(FpBinOp::Add),
        Just(FpBinOp::Sub),
        Just(FpBinOp::Mul),
        Just(FpBinOp::Div),
    ]
}

/// Non-branch operations (branches are appended per block with valid
/// targets).
fn arb_body_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (arb_gpr(), arb_gpr(), -64i64..64, any::<bool>(), any::<bool>())
            .prop_map(|(rt, base, disp, update, sym)| OpSpec::Mem {
                rt,
                base,
                disp: disp * 4,
                update,
                store: false,
                sym,
            }),
        (arb_gpr(), arb_gpr(), -64i64..64, any::<bool>(), any::<bool>())
            .prop_map(|(rt, base, disp, update, sym)| OpSpec::Mem {
                rt,
                base,
                disp: disp * 4,
                update,
                store: true,
                sym,
            }),
        (arb_gpr(), any::<i32>()).prop_map(|(rt, imm)| OpSpec::Plain(Op::LoadImm {
            rt,
            imm: i64::from(imm),
        })),
        (arb_gpr(), arb_gpr()).prop_map(|(rt, rs)| OpSpec::Plain(Op::Move { rt, rs })),
        (arb_fx(), arb_gpr(), arb_gpr(), arb_gpr())
            .prop_map(|(op, rt, ra, rb)| OpSpec::Plain(Op::Fx { op, rt, ra, rb })),
        (arb_fx(), arb_gpr(), arb_gpr(), -100i64..100)
            .prop_map(|(op, rt, ra, imm)| OpSpec::Plain(Op::FxImm { op, rt, ra, imm })),
        (arb_fp(), arb_fpr(), arb_fpr(), arb_fpr())
            .prop_map(|(op, rt, ra, rb)| OpSpec::Plain(Op::Fp { op, rt, ra, rb })),
        (arb_cr(), arb_gpr(), arb_gpr())
            .prop_map(|(crt, ra, rb)| OpSpec::Plain(Op::Compare { crt, ra, rb })),
        (arb_cr(), arb_gpr(), -100i64..100)
            .prop_map(|(crt, ra, imm)| OpSpec::Plain(Op::CompareImm { crt, ra, imm })),
        (arb_cr(), arb_fpr(), arb_fpr())
            .prop_map(|(crt, ra, rb)| OpSpec::Plain(Op::FpCompare { crt, ra, rb })),
        arb_gpr().prop_map(|rs| OpSpec::Plain(Op::Print { rs })),
        (arb_gpr(), arb_gpr()).prop_map(|(u, d)| OpSpec::Plain(Op::Call {
            name: "helper".into(),
            uses: vec![u],
            defs: vec![d],
        })),
    ]
}

#[derive(Debug, Clone)]
enum OpSpec {
    Plain(Op),
    Mem { rt: Reg, base: Reg, disp: i64, update: bool, store: bool, sym: bool },
}

prop_compose! {
    fn arb_function()(
        blocks in prop::collection::vec(
            (prop::collection::vec(arb_body_op(), 0..6), any::<bool>(), arb_cr(), arb_bit()),
            1..6,
        ),
    ) -> Function {
        let mut f = Function::new("roundtrip");
        let sym = f.add_symbol("mem");
        let n = blocks.len();
        let ids: Vec<gis_ir::BlockId> =
            (0..n).map(|i| f.add_block(format!("B{i}"))).collect();
        for (i, (ops, cond, cr, bit)) in blocks.into_iter().enumerate() {
            let bid = ids[i];
            for spec in ops {
                let op = match spec {
                    OpSpec::Plain(op) => op,
                    OpSpec::Mem { rt, base, disp, update, store, sym: with_sym } => {
                        let mem = MemRef {
                            sym: with_sym.then_some(sym),
                            base,
                            disp,
                        };
                        match (store, update) {
                            (false, false) => Op::Load { rt, mem },
                            (false, true) => Op::LoadUpdate { rt, mem },
                            (true, false) => Op::Store { rs: rt, mem },
                            (true, true) => Op::StoreUpdate { rs: rt, mem },
                        }
                    }
                };
                let id = f.fresh_inst_id();
                f.block_mut(bid).push(Inst::new(id, op));
            }
            // Terminate: last block returns; earlier blocks either fall
            // through via a conditional branch or continue implicitly.
            let id = f.fresh_inst_id();
            if i + 1 == n {
                f.block_mut(bid).push(Inst::new(id, Op::Ret));
            } else if cond {
                // Branch anywhere later (or to self — a back edge).
                let target = ids[(i + 1 + cr.index() as usize) % n];
                f.block_mut(bid).push(Inst::new(
                    id,
                    Op::BranchCond { target, cr, bit, when: bit == CondBit::Lt },
                ));
            }
        }
        f.recompute_allocators();
        f
    }
}

proptest! {
    #[test]
    fn print_parse_roundtrip(f in arb_function()) {
        prop_assume!(f.verify().is_ok());
        let text = f.to_string();
        let parsed = parse_function(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        // Same name, same blocks, same instructions (ids and ops).
        prop_assert_eq!(parsed.name(), f.name());
        prop_assert_eq!(parsed.num_blocks(), f.num_blocks());
        let a: Vec<_> = f.insts().map(|(b, i)| (b, i.id, i.op.clone())).collect();
        let b: Vec<_> = parsed.insts().map(|(b, i)| (b, i.id, i.op.clone())).collect();
        prop_assert_eq!(a, b);
        // And printing again is a fixpoint.
        prop_assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn verify_is_stable_under_roundtrip(f in arb_function()) {
        prop_assume!(f.verify().is_ok());
        let parsed = parse_function(&f.to_string()).expect("parses");
        prop_assert_eq!(parsed.verify(), Ok(()));
    }
}
