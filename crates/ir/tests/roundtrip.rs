//! Property: the textual form round-trips — `parse(print(f)) == f` for
//! arbitrary well-formed functions, generated from the in-repo PRNG.

use gis_ir::{parse_function, CondBit, FpBinOp, Function, FxBinOp, Inst, MemRef, Op, Reg};
use gis_workloads::rng::XorShift64Star;

const BITS: [CondBit; 3] = [CondBit::Lt, CondBit::Gt, CondBit::Eq];

const FX_OPS: [FxBinOp; 10] = [
    FxBinOp::Add,
    FxBinOp::Sub,
    FxBinOp::Mul,
    FxBinOp::Div,
    FxBinOp::And,
    FxBinOp::Or,
    FxBinOp::Xor,
    FxBinOp::Sll,
    FxBinOp::Srl,
    FxBinOp::Sra,
];

const FP_OPS: [FpBinOp; 4] = [FpBinOp::Add, FpBinOp::Sub, FpBinOp::Mul, FpBinOp::Div];

fn arb_gpr(r: &mut XorShift64Star) -> Reg {
    Reg::gpr(r.range_u32(0, 32))
}

fn arb_fpr(r: &mut XorShift64Star) -> Reg {
    Reg::fpr(r.range_u32(0, 32))
}

fn arb_cr(r: &mut XorShift64Star) -> Reg {
    Reg::cr(r.range_u32(0, 8))
}

/// A random non-branch operation (branches are appended per block with
/// valid targets). `sym` is the function's sole memory symbol.
fn arb_body_op(r: &mut XorShift64Star, sym: gis_ir::SymId) -> Op {
    match r.below(12) {
        k @ (0 | 1) => {
            let rt = arb_gpr(r);
            let mem = MemRef {
                sym: r.chance(1, 2).then_some(sym),
                base: arb_gpr(r),
                disp: r.range_i64(-64, 64) * 4,
            };
            match (k == 1, r.chance(1, 2)) {
                (false, false) => Op::Load { rt, mem },
                (false, true) => Op::LoadUpdate { rt, mem },
                (true, false) => Op::Store { rs: rt, mem },
                (true, true) => Op::StoreUpdate { rs: rt, mem },
            }
        }
        2 => Op::LoadImm {
            rt: arb_gpr(r),
            imm: r.next_u64() as i32 as i64,
        },
        3 => Op::Move {
            rt: arb_gpr(r),
            rs: arb_gpr(r),
        },
        4 => Op::Fx {
            op: *r.pick(&FX_OPS),
            rt: arb_gpr(r),
            ra: arb_gpr(r),
            rb: arb_gpr(r),
        },
        5 => Op::FxImm {
            op: *r.pick(&FX_OPS),
            rt: arb_gpr(r),
            ra: arb_gpr(r),
            imm: r.range_i64(-100, 100),
        },
        6 => Op::Fp {
            op: *r.pick(&FP_OPS),
            rt: arb_fpr(r),
            ra: arb_fpr(r),
            rb: arb_fpr(r),
        },
        7 => Op::Compare {
            crt: arb_cr(r),
            ra: arb_gpr(r),
            rb: arb_gpr(r),
        },
        8 => Op::CompareImm {
            crt: arb_cr(r),
            ra: arb_gpr(r),
            imm: r.range_i64(-100, 100),
        },
        9 => Op::FpCompare {
            crt: arb_cr(r),
            ra: arb_fpr(r),
            rb: arb_fpr(r),
        },
        10 => Op::Print { rs: arb_gpr(r) },
        _ => Op::Call {
            name: "helper".into(),
            uses: vec![arb_gpr(r)],
            defs: vec![arb_gpr(r)],
        },
    }
}

fn arb_function(r: &mut XorShift64Star) -> Function {
    let mut f = Function::new("roundtrip");
    let sym = f.add_symbol("mem");
    let n = 1 + r.below(5);
    let ids: Vec<gis_ir::BlockId> = (0..n).map(|i| f.add_block(format!("B{i}"))).collect();
    for (i, &bid) in ids.iter().enumerate() {
        for _ in 0..r.below(6) {
            let op = arb_body_op(r, sym);
            let id = f.fresh_inst_id();
            f.block_mut(bid).push(Inst::new(id, op));
        }
        // Terminate: last block returns; earlier blocks either fall
        // through via a conditional branch or continue implicitly.
        let id = f.fresh_inst_id();
        if i + 1 == n {
            f.block_mut(bid).push(Inst::new(id, Op::Ret));
        } else if r.chance(1, 2) {
            // Branch anywhere later (or to self — a back edge).
            let cr = arb_cr(r);
            let bit = *r.pick(&BITS);
            let target = ids[(i + 1 + cr.index() as usize) % n];
            f.block_mut(bid).push(Inst::new(
                id,
                Op::BranchCond {
                    target,
                    cr,
                    bit,
                    when: bit == CondBit::Lt,
                },
            ));
        }
    }
    f.recompute_allocators();
    f
}

/// Runs `check` on every well-formed random function from 256 stable
/// seeds (the replacement for the previous proptest harness).
fn for_random_functions(check: impl Fn(&Function)) {
    for seed in 0..256u64 {
        let f = arb_function(&mut XorShift64Star::new(seed));
        if f.verify().is_ok() {
            check(&f);
        }
    }
}

#[test]
fn print_parse_roundtrip() {
    for_random_functions(|f| {
        let text = f.to_string();
        let parsed =
            parse_function(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        // Same name, same blocks, same instructions (ids and ops).
        assert_eq!(parsed.name(), f.name());
        assert_eq!(parsed.num_blocks(), f.num_blocks());
        let a: Vec<_> = f.insts().map(|(b, i)| (b, i.id, i.op.clone())).collect();
        let b: Vec<_> = parsed
            .insts()
            .map(|(b, i)| (b, i.id, i.op.clone()))
            .collect();
        assert_eq!(a, b);
        // And printing again is a fixpoint.
        assert_eq!(parsed.to_string(), text);
    });
}

#[test]
fn verify_is_stable_under_roundtrip() {
    for_random_functions(|f| {
        let parsed = parse_function(&f.to_string()).expect("parses");
        assert_eq!(parsed.verify(), Ok(()));
    });
}
