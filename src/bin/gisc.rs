//! `gisc` — the command-line driver: compile tinyc source or assemble IR
//! text, schedule it for a chosen machine, and optionally run it. Two
//! subcommands wrap the gis-check subsystem: `gisc fuzz` runs the
//! differential fuzzer and `gisc verify` runs the structural verifier on
//! one file.
//!
//! ```text
//! gisc fuzz [--seed N] [--iters K] [--out DIR]
//!     differentially fuzz the scheduler; on divergence, print and save
//!     the minimized reproducer (default --out tests/corpus)
//! gisc verify <file|->
//!     structural verification of textual IR (corpus files accepted)
//! gisc serve --listen unix:PATH|tcp:HOST:PORT [--jobs N]
//!     [--cache-cap N] [--timeout-ms N] [--cache-file PATH] [--metrics]
//!     run the scheduling daemon until SIGTERM/ctrl-c or a client's
//!     shutdown request; --metrics prints the registry on shutdown;
//!     --cache-file persists the schedule cache across restarts
//! gisc serve-request --listen SPEC [--ping] [--workload NAME]...
//!     [--file F]... [--tinyc|--asm] [--machine M] [--repeat N]
//!     [--print-schedule] [--raw LINE]... [--stats] [--shutdown]
//!     drive a running daemon: schedule batches, fetch counters,
//!     or ask it to drain and exit (see docs/SERVICE.md)
//! gisc bench-matrix [--smoke] [--out FILE] [--results FILE] [--check]
//!     run the (workload × machine × policy) experiment matrix and write
//!     BENCH_matrix.json + docs/RESULTS.md; --check verifies the
//!     committed markdown matches the committed JSON without running
//!     anything (the CI docs gate); --smoke shrinks every input
//!
//! gisc [OPTIONS] <file>
//!   --tinyc | --asm      input language (default: by extension, .c/.gis)
//!   --level <base|useful|speculative>   scheduling level (default speculative)
//!   --machine <NAME>     machine model: rs6k (default), scalar,
//!                        issue2/issue4/issue8, wideN, vliwN
//!   --no-unroll --no-rotate --no-rename --paper
//!   --dup                enable duplication-based global motion (copies
//!                        join instructions into every predecessor)
//!   --no-memo            disable the process-wide region schedule memo
//!                        (output is bit-identical either way)
//!   --static-units       one task per partition unit, claimed in region
//!                        order (disables size-aware splitting/stealing)
//!   --branches <N>       max speculation depth (default 1)
//!   --jobs <N>           worker threads for the global passes; 0 = one
//!                        per CPU (default 1; output is identical for any N)
//!   --opt                run the machine-independent optimizer first
//!   --run                execute after scheduling and report cycles
//!   --stats              print scheduler statistics
//!   --dot-cfg            print the CFG in DOT instead of code
//!   --dot-cfg=traced     ... with the scheduler's motions overlaid
//!   --dot-cspdg          print each region's CSPDG in DOT instead of code
//!   --dot-cspdg=traced   ... with the scheduler's motions overlaid
//!   --report <out.html>  write a self-contained HTML schedule report
//!   --trace              print the scheduler's decision trace (stderr)
//!   --trace=json:<path>  also write the trace as JSON lines to <path>
//!   --metrics            print the metrics registry, including the
//!                        scheduler's perf counters and the region
//!                        memo's cache.region.* counters (stderr)
//!   --explain <inst>     print every decision about one instruction (I8 or 8)
//!   --timeline           with --run: per-cycle unit occupancy and stalls
//! ```
//!
//! Examples:
//!
//! ```text
//! gisc --tinyc --run examples/kernels/minmax.c
//! echo 'CL.0: ... ' | gisc --asm --level useful -
//! ```

use gis_cfg::{cfg_to_dot, Cfg};
use gis_core::{compile_observed, SchedConfig, SchedLevel, SchedStats};
use gis_ir::{parse_function, Function};
use gis_machine::MachineDescription;
use gis_sim::{execute, ExecConfig, TimingSim};
use gis_trace::{render_report, Metrics, NopObserver, Recorder, TraceEvent, TraceQuery};
use gis_viz::{schedule_report, traced_cfg_dot, traced_cspdg_dot, ScheduleReport};
use std::io::Read as _;
use std::process::ExitCode;

/// How (and whether) to print a graph in DOT instead of code.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DotMode {
    /// Print the scheduled function as code (the default).
    Off,
    /// Print the plain graph.
    Plain,
    /// Print the graph with the scheduler's decision trace overlaid.
    Traced,
}

struct Options {
    file: String,
    tinyc: Option<bool>,
    level: SchedLevel,
    machine: MachineDescription,
    config_tweaks: Vec<fn(&mut SchedConfig)>,
    branches: usize,
    jobs: usize,
    run: bool,
    stats: bool,
    dot_cfg: DotMode,
    dot_cspdg: DotMode,
    report: Option<String>,
    opt: bool,
    trace: bool,
    trace_json: Option<String>,
    metrics: bool,
    explain: Option<u32>,
    timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: gisc [--tinyc|--asm] [--level base|useful|speculative] \
         [--machine rs6k|scalar|issue2/4/8|wideN|vliwN] [--no-unroll] [--no-rotate] \
         [--no-rename] [--paper] [--dup] [--no-memo] [--static-units] [--branches N] \
         [--jobs N] [--opt] [--run] [--stats] \
         [--dot-cfg[=traced]] [--dot-cspdg[=traced]] [--report <out.html>] \
         [--trace[=json:<path>]] [--metrics] [--explain <inst>] [--timeline] <file|->\n\
         \x20      gisc fuzz [--seed N] [--iters K] [--out DIR]\n\
         \x20      gisc verify <file|->\n\
         \x20      gisc serve --listen unix:PATH|tcp:HOST:PORT [--jobs N] \
         [--cache-cap N] [--timeout-ms N] [--cache-file PATH] [--metrics]\n\
         \x20      gisc serve-request --listen SPEC [--ping] [--workload NAME] \
         [--file F] [--machine M] [--repeat N] [--stats] [--shutdown]\n\
         \x20      gisc bench-matrix [--smoke] [--out FILE] [--results FILE] [--check]"
    );
    std::process::exit(2)
}

/// Rejects a malformed argument with a specific message (exit 2, like
/// `usage`, but telling the user *which* flag was wrong and why).
fn bad_arg(msg: &str) -> ! {
    eprintln!("gisc: {msg}");
    eprintln!("run `gisc --help` for usage");
    std::process::exit(2)
}

/// Parses the value of an integer-valued flag, with actionable errors for
/// both the missing-value and unparsable-value cases.
fn int_value<T: std::str::FromStr>(flag: &str, kind: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        bad_arg(&format!("{flag} expects {kind}, but no value was given"));
    };
    v.parse()
        .unwrap_or_else(|_| bad_arg(&format!("{flag} expects {kind}, got '{v}'")))
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: String::new(),
        tinyc: None,
        level: SchedLevel::Speculative,
        machine: MachineDescription::rs6k(),
        config_tweaks: Vec::new(),
        branches: 1,
        jobs: 1,
        run: false,
        stats: false,
        dot_cfg: DotMode::Off,
        dot_cspdg: DotMode::Off,
        report: None,
        opt: false,
        trace: false,
        trace_json: None,
        metrics: false,
        explain: None,
        timeline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tinyc" => opts.tinyc = Some(true),
            "--asm" => opts.tinyc = Some(false),
            "--level" => {
                opts.level = match args.next().as_deref() {
                    Some("base") => SchedLevel::BasicBlockOnly,
                    Some("useful") => SchedLevel::Useful,
                    Some("speculative") => SchedLevel::Speculative,
                    _ => usage(),
                }
            }
            "--machine" => {
                let m = args.next().unwrap_or_else(|| usage());
                opts.machine = MachineDescription::by_name(&m).unwrap_or_else(|| {
                    bad_arg(&format!(
                        "--machine expects rs6k, scalar, issue2/4/8, wideN or vliwN, got '{m}'"
                    ))
                });
            }
            "--no-unroll" => opts.config_tweaks.push(|c| c.unroll = false),
            "--no-rotate" => opts.config_tweaks.push(|c| c.rotate = false),
            "--no-rename" => opts.config_tweaks.push(|c| c.rename = false),
            "--dup" => opts.config_tweaks.push(|c| c.duplication = true),
            "--no-memo" => opts.config_tweaks.push(|c| c.region_memo = false),
            "--static-units" => opts.config_tweaks.push(|c| c.static_units = true),
            "--paper" => opts.config_tweaks.push(|c| {
                c.rename = false;
                c.unroll = false;
                c.rotate = false;
                c.final_bb_pass = false;
            }),
            "--branches" => {
                opts.branches = int_value("--branches", "a non-negative integer", args.next());
            }
            "--jobs" => {
                opts.jobs = int_value(
                    "--jobs",
                    "a non-negative integer (0 = one worker per CPU)",
                    args.next(),
                );
            }
            "--opt" => opts.opt = true,
            "--run" => opts.run = true,
            "--stats" => opts.stats = true,
            "--dot-cfg" => opts.dot_cfg = DotMode::Plain,
            "--dot-cspdg" => opts.dot_cspdg = DotMode::Plain,
            "--report" => {
                opts.report = Some(
                    args.next()
                        .unwrap_or_else(|| bad_arg("--report expects an output file path")),
                );
            }
            "--trace" => opts.trace = true,
            "--metrics" => opts.metrics = true,
            "--explain" => {
                let inst = args
                    .next()
                    .unwrap_or_else(|| bad_arg("--explain expects an instruction id (I8 or 8)"));
                let digits = inst.strip_prefix('I').unwrap_or(&inst);
                opts.explain = Some(digits.parse().unwrap_or_else(|_| {
                    bad_arg(&format!(
                        "--explain expects an instruction id (I8 or 8), got '{inst}'"
                    ))
                }));
            }
            "--timeline" => opts.timeline = true,
            "-h" | "--help" => usage(),
            other if other.starts_with("--trace=") => {
                let spec = &other["--trace=".len()..];
                let Some(path) = spec.strip_prefix("json:") else {
                    bad_arg(&format!(
                        "--trace expects no value or 'json:<path>', got '{spec}'"
                    ));
                };
                opts.trace = true;
                opts.trace_json = Some(path.to_owned());
            }
            other if other.starts_with("--metrics=") => {
                let spec = &other["--metrics=".len()..];
                bad_arg(&format!("--metrics expects no value, got '{spec}'"));
            }
            other if other.starts_with("--dup=") => {
                let spec = &other["--dup=".len()..];
                bad_arg(&format!(
                    "--dup expects no value (it is an on/off switch), got '{spec}'"
                ));
            }
            other if other.starts_with("--dot-cfg=") => {
                let mode = &other["--dot-cfg=".len()..];
                if mode != "traced" {
                    bad_arg(&format!(
                        "--dot-cfg expects no value or 'traced', got '{mode}'"
                    ));
                }
                opts.dot_cfg = DotMode::Traced;
            }
            other if other.starts_with("--dot-cspdg=") => {
                let mode = &other["--dot-cspdg=".len()..];
                if mode != "traced" {
                    bad_arg(&format!(
                        "--dot-cspdg expects no value or 'traced', got '{mode}'"
                    ));
                }
                opts.dot_cspdg = DotMode::Traced;
            }
            other if other.starts_with('-') && other != "-" => {
                bad_arg(&format!("unknown flag '{other}'"));
            }
            other if opts.file.is_empty() => opts.file = other.to_owned(),
            other => bad_arg(&format!(
                "unexpected extra argument '{other}' (input file is already '{}')",
                opts.file
            )),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

/// The scheduler's flat perf counters as `(name, value)` pairs for the
/// metrics registry — surfaced by `--metrics` and the HTML report's
/// metrics section. The `perf.` prefix keeps them grouped (and apart from
/// the event-derived counters) in the sorted registry listing.
fn perf_counters(stats: &SchedStats) -> [(&'static str, u64); 6] {
    [
        ("perf.dep-edges", stats.dep_edges as u64),
        ("perf.dep-edges-reduced", stats.dep_edges_reduced as u64),
        ("perf.liveness-full", stats.liveness_full as u64),
        (
            "perf.liveness-incremental",
            stats.liveness_incremental as u64,
        ),
        ("perf.scratch-allocs", stats.scratch_allocs as u64),
        ("perf.scratch-reuses", stats.scratch_reuses as u64),
    ]
}

/// The region schedule memo's process-wide counters as `(name, value)`
/// pairs — the same `cache.region.*` names gis-serve reports, so the
/// CLI's `--metrics` output and the HTML report's metrics section read
/// the same as the daemon's stats response. Note that traced compiles
/// bypass the memo (splicing would skip the events a trace consumer
/// needs), so a single traced `gisc` run reports hit/miss/splice as
/// zero; the counters are live in the daemon, whose compiles are
/// untraced.
fn memo_counters() -> [(&'static str, u64); 5] {
    let c = gis_core::region_memo_counters();
    [
        ("cache.region.hit", c.hits),
        ("cache.region.miss", c.misses),
        ("cache.region.splice", c.splices),
        ("cache.region.entries", c.entries),
        ("cache.region.capacity", c.capacity),
    ]
}

fn read_input(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))
    }
}

fn main() -> ExitCode {
    // Subcommand dispatch before flag parsing: `gisc fuzz`/`gisc verify`
    // wrap the gis-check subsystem.
    let mut raw = std::env::args().skip(1);
    match raw.next().as_deref() {
        Some("fuzz") => return fuzz_command(raw),
        Some("verify") => return verify_command(raw),
        Some("serve") => return serve_command(raw),
        Some("serve-request") => return serve_request_command(raw),
        Some("bench-matrix") => return bench_matrix_command(raw),
        _ => {}
    }
    let opts = parse_args();
    match drive(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gisc: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `gisc fuzz [--seed N] [--iters K] [--out DIR]`: run the differential
/// fuzzer; on divergence print the minimized reproducer and save it under
/// the output directory (default `tests/corpus`).
fn fuzz_command(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut seed: u64 = 1;
    let mut iters: u64 = 100;
    let mut out_dir = String::from("tests/corpus");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = int_value("--seed", "a 64-bit unsigned integer", args.next()),
            "--iters" => iters = int_value("--iters", "a non-negative integer", args.next()),
            "--out" => {
                out_dir = args
                    .next()
                    .unwrap_or_else(|| bad_arg("--out expects a directory path"));
            }
            other => bad_arg(&format!("unknown fuzz argument '{other}'")),
        }
    }
    // The full surface: the jobs matrix, the duplication matrix (gate
    // on/off × jobs {1, 4} × speculation depth {1, 2}), the wide-machine
    // matrix, and the region-memo matrix (memo on/off × jobs {1, 4}).
    let matrix = gis_check::full_matrix();
    eprintln!(
        "gisc fuzz: seed {seed}, {iters} iterations, matrix of {} configs",
        matrix.len()
    );
    let report = gis_check::run_fuzz(seed, iters, &matrix);
    match report.failure {
        None => {
            eprintln!(
                "gisc fuzz: OK — {} iterations, no divergence",
                report.iterations
            );
            ExitCode::SUCCESS
        }
        Some(failure) => {
            let text = failure.reproducer_text();
            eprintln!(
                "gisc fuzz: DIVERGENCE at iteration {} ({})",
                failure.iteration, failure.divergence
            );
            eprintln!("--- minimized reproducer ---");
            eprint!("{text}");
            eprintln!("----------------------------");
            let path = format!("{out_dir}/fuzz-seed{}-iter{}.gis", seed, failure.iteration);
            match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, &text)) {
                Ok(()) => eprintln!("gisc fuzz: reproducer written to {path}"),
                Err(e) => eprintln!("gisc fuzz: could not write {path}: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}

/// `gisc verify <file|->`: structural verification of one textual-IR
/// file. Accepts corpus reproducers (`; mem:` header lines are ignored
/// for verification purposes).
fn verify_command(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(file) = args.next() else {
        bad_arg("verify expects a file argument (or '-' for stdin)");
    };
    if let Some(extra) = args.next() {
        bad_arg(&format!(
            "verify takes exactly one file, got extra '{extra}'"
        ));
    }
    let text = match read_input(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gisc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let function = match gis_check::parse_reproducer(&text) {
        Ok((f, _mem)) => f,
        Err(e) => {
            eprintln!("gisc verify: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match gis_check::verify_function(&function) {
        Ok(()) => {
            println!(
                "{file}: ok ({} blocks, {} instructions)",
                function.num_blocks(),
                function.num_insts()
            );
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("gisc verify: {file}: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

/// `gisc bench-matrix [--smoke] [--out FILE] [--results FILE] [--check]`:
/// the `(workload × machine × policy)` experiment behind docs/RESULTS.md.
///
/// The default run schedules, checks and times every cell, then writes
/// the JSON matrix (`--out`, default `BENCH_matrix.json`) and the
/// rendered report (`--results`, default `docs/RESULTS.md`). `--smoke`
/// shrinks every workload so the whole pipeline runs in seconds.
/// `--check` runs nothing: it re-renders the committed JSON and fails
/// if the committed markdown differs — the CI gate that keeps the
/// report from drifting from the data it claims to present.
fn bench_matrix_command(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut smoke = false;
    let mut check = false;
    let mut out_path = String::from("BENCH_matrix.json");
    let mut results_path = String::from("docs/RESULTS.md");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| bad_arg("--out expects a file path"));
            }
            "--results" => {
                results_path = args
                    .next()
                    .unwrap_or_else(|| bad_arg("--results expects a file path"));
            }
            other => bad_arg(&format!("unknown bench-matrix argument '{other}'")),
        }
    }
    if check {
        let json = match std::fs::read_to_string(&out_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gisc bench-matrix: reading {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rendered = match gis_bench::matrix::render_markdown(&json) {
            Ok(md) => md,
            Err(e) => {
                eprintln!("gisc bench-matrix: {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed = match std::fs::read_to_string(&results_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gisc bench-matrix: reading {results_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if committed == rendered {
            eprintln!("gisc bench-matrix: {results_path} matches {out_path}");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "gisc bench-matrix: {results_path} is out of date with {out_path} — \
             rerun `gisc bench-matrix` and commit both files"
        );
        return ExitCode::FAILURE;
    }
    let report = gis_bench::matrix::run_matrix(smoke, |line| eprintln!("{line}"));
    let json = gis_bench::matrix::to_json(&report);
    let markdown = match gis_bench::matrix::render_markdown(&json) {
        Ok(md) => md,
        Err(e) => {
            eprintln!("gisc bench-matrix: rendering: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("gisc bench-matrix: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&results_path, &markdown) {
        eprintln!("gisc bench-matrix: writing {results_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "gisc bench-matrix: {} cells ({} workloads × {} machines × {} policies) — \
         wrote {out_path} and {results_path}",
        report.cells.len(),
        report.workloads.len(),
        report.machines.len(),
        report.policies.len()
    );
    ExitCode::SUCCESS
}

/// Parses a `--listen` value, rejecting malformed specs in the standard
/// flag-error style shared by both serve subcommands.
fn listen_value(value: Option<String>) -> (gis_serve::Listen, String) {
    let Some(spec) = value else {
        bad_arg("--listen expects unix:PATH or tcp:HOST:PORT, but no value was given");
    };
    let listen = gis_serve::Listen::parse(&spec).unwrap_or_else(|_| {
        bad_arg(&format!(
            "--listen expects unix:PATH or tcp:HOST:PORT, got '{spec}'"
        ))
    });
    (listen, spec)
}

/// `gisc serve --listen SPEC [--jobs N] [--cache-cap N] [--timeout-ms N]
/// [--cache-file PATH] [--metrics]`: run the scheduling daemon until a
/// signal or a client's shutdown request, then drain in-flight work and
/// exit cleanly. With `--cache-file` the schedule cache is reloaded on
/// start and dumped on drain, so a restarted daemon serves warm hits.
fn serve_command(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut listen: Option<(gis_serve::Listen, String)> = None;
    let mut jobs: usize = 0;
    let mut cache_cap: usize = 1024;
    let mut timeout_ms: u64 = 0;
    let mut cache_file: Option<std::path::PathBuf> = None;
    let mut metrics = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = Some(listen_value(args.next())),
            "--jobs" => {
                jobs = int_value(
                    "--jobs",
                    "a non-negative integer (0 = one worker per CPU)",
                    args.next(),
                );
            }
            "--cache-cap" => {
                cache_cap = int_value(
                    "--cache-cap",
                    "a non-negative integer (0 disables the schedule cache)",
                    args.next(),
                );
            }
            "--timeout-ms" => {
                timeout_ms = int_value(
                    "--timeout-ms",
                    "a non-negative integer (0 = no per-batch deadline)",
                    args.next(),
                );
            }
            "--cache-file" => {
                let Some(path) = args.next() else {
                    bad_arg("--cache-file expects a file path");
                };
                cache_file = Some(std::path::PathBuf::from(path));
            }
            "--metrics" => metrics = true,
            other => bad_arg(&format!("unknown serve argument '{other}'")),
        }
    }
    let Some((listen, spec)) = listen else {
        bad_arg("serve expects --listen unix:PATH or tcp:HOST:PORT");
    };
    gis_serve::install_signal_handlers();
    let mut config = gis_serve::ServeConfig::new(listen);
    config.jobs = jobs;
    config.cache_cap = cache_cap;
    config.timeout_ms = timeout_ms;
    config.cache_file = cache_file;
    let server = match gis_serve::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gisc serve: cannot listen on {spec}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.tcp_addr() {
        Some(addr) => eprintln!("gisc serve: listening on tcp:{addr}"),
        None => eprintln!("gisc serve: listening on {spec}"),
    }
    // `join` blocks until the accept loop notices a shutdown request
    // (client `shutdown`, SIGTERM or ctrl-c) and the drain completes.
    let registry = server.join();
    if metrics {
        eprint!("{registry}");
    }
    eprintln!("gisc serve: shut down cleanly");
    ExitCode::SUCCESS
}

/// `gisc serve-request`: a thin client for a running daemon. Actions run
/// in a fixed order — ping, raw lines, schedule batches (each `--repeat`
/// round re-sends the same batch, so round two onward measures the
/// cache), stats, shutdown.
fn serve_request_command(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut listen: Option<(gis_serve::Listen, String)> = None;
    let mut machine = String::from("rs6k");
    let mut lang = gis_serve::Lang::TinyC;
    let mut funcs: Vec<gis_serve::FuncSpec> = Vec::new();
    let mut raw_lines: Vec<String> = Vec::new();
    let mut repeat: usize = 1;
    let mut ping = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut print_schedule = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = Some(listen_value(args.next())),
            "--machine" => {
                machine = args.next().unwrap_or_else(|| {
                    bad_arg("--machine expects a machine name (rs6k, scalar, issue2/4/8, wideN or vliwN)")
                });
            }
            "--tinyc" => lang = gis_serve::Lang::TinyC,
            "--asm" => lang = gis_serve::Lang::Asm,
            "--workload" => {
                let Some(name) = args.next() else {
                    bad_arg("--workload expects a preset name (many-loops-s, -m, -l or -skewed)");
                };
                let text = if name == gis_workloads::synth::MANY_LOOPS_SKEWED_PRESET.0 {
                    let (_, loops, stmts, heavy, seed) =
                        gis_workloads::synth::MANY_LOOPS_SKEWED_PRESET;
                    gis_workloads::synth::many_loops_skewed_source(loops, stmts, heavy, seed)
                } else {
                    let preset = gis_workloads::synth::MANY_LOOPS_PRESETS
                        .iter()
                        .find(|&&(n, ..)| n == name);
                    let Some(&(_, loops, stmts, seed)) = preset else {
                        bad_arg(&format!(
                            "--workload expects a preset name (many-loops-s, -m, -l or \
                             -skewed), got '{name}'"
                        ));
                    };
                    gis_workloads::synth::many_loops_source(loops, stmts, seed)
                };
                funcs.push(gis_serve::FuncSpec {
                    name: Some(name),
                    text,
                });
            }
            "--file" => {
                let Some(path) = args.next() else {
                    bad_arg("--file expects a file path (or '-' for stdin)");
                };
                match read_input(&path) {
                    Ok(text) => funcs.push(gis_serve::FuncSpec {
                        name: Some(path),
                        text,
                    }),
                    Err(e) => {
                        eprintln!("gisc serve-request: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--repeat" => {
                repeat = int_value("--repeat", "a positive integer", args.next());
                if repeat == 0 {
                    bad_arg("--repeat expects a positive integer, got '0'");
                }
            }
            "--raw" => {
                raw_lines.push(
                    args.next()
                        .unwrap_or_else(|| bad_arg("--raw expects a JSON request line")),
                );
            }
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--print-schedule" => print_schedule = true,
            other => bad_arg(&format!("unknown serve-request argument '{other}'")),
        }
    }
    let Some((listen, spec)) = listen else {
        bad_arg("serve-request expects --listen unix:PATH or tcp:HOST:PORT");
    };
    let outcome = run_requests(
        &listen,
        &machine,
        lang,
        &funcs,
        &raw_lines,
        repeat,
        ping,
        stats,
        shutdown,
        print_schedule,
    );
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("gisc serve-request: {spec}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The serve-request action sequence against a connected client.
/// Returns `Ok(false)` when every request round-tripped but some
/// function failed or timed out.
#[allow(clippy::too_many_arguments)] // a private arg-struct in all but name
fn run_requests(
    listen: &gis_serve::Listen,
    machine: &str,
    lang: gis_serve::Lang,
    funcs: &[gis_serve::FuncSpec],
    raw_lines: &[String],
    repeat: usize,
    ping: bool,
    stats: bool,
    shutdown: bool,
    print_schedule: bool,
) -> std::io::Result<bool> {
    let mut client = gis_serve::Client::connect(listen)?;
    let mut all_ok = true;
    if ping {
        client.ping()?;
        println!("pong");
    }
    for line in raw_lines {
        println!("{}", client.round_trip_raw(line)?);
    }
    for round in 1..=if funcs.is_empty() { 0 } else { repeat } {
        let batch = client.schedule_batch(lang, machine, Vec::new(), funcs)?;
        for f in &batch.funcs {
            match &f.outcome {
                gis_serve::FuncOutcome::Ok {
                    cached,
                    hash,
                    nanos,
                    schedule,
                    ..
                } => {
                    let source = if *cached { "hit" } else { "miss" };
                    println!("{}: {source} {hash:016x} {nanos} ns", f.name);
                    if print_schedule {
                        print!("{schedule}");
                    }
                }
                gis_serve::FuncOutcome::Error { message } => {
                    eprintln!("gisc serve-request: {}: {message}", f.name);
                    all_ok = false;
                }
                gis_serve::FuncOutcome::Timeout => {
                    eprintln!("gisc serve-request: {}: timed out", f.name);
                    all_ok = false;
                }
            }
        }
        let s = &batch.summary;
        eprintln!(
            "batch {round}/{repeat}: {}/{} ok, {} hits, {} misses, {} ns",
            s.ok, s.count, s.cache_hits, s.cache_misses, s.nanos
        );
    }
    if stats {
        for (name, value) in client.stats()? {
            println!("{name} {value}");
        }
    }
    if shutdown {
        client.shutdown_server()?;
        eprintln!("gisc serve-request: server acknowledged shutdown");
    }
    Ok(all_ok)
}

fn drive(opts: &Options) -> Result<(), String> {
    let text = read_input(&opts.file)?;
    let is_tinyc = opts
        .tinyc
        .unwrap_or_else(|| opts.file.ends_with(".c") || opts.file.ends_with(".tc"));

    let (mut function, memory): (Function, Vec<(i64, i64)>) = if is_tinyc {
        let program = gis_tinyc::compile_program(&text).map_err(|e| e.to_string())?;
        (program.function, Vec::new())
    } else {
        (
            parse_function(&text).map_err(|e| e.to_string())?,
            Vec::new(),
        )
    };

    let mut config = SchedConfig::speculative();
    config.level = opts.level;
    config.max_speculation_branches = opts.branches;
    config.jobs = opts.jobs;
    for tweak in &opts.config_tweaks {
        tweak(&mut config);
    }

    let original = function.clone();
    if opts.opt {
        let ostats = gis_opt::optimize(&mut function, &gis_opt::OptConfig::default());
        if opts.stats {
            eprintln!("optimizer: {ostats}");
        }
    }
    // Trace when any trace-consuming flag is on; otherwise compile with
    // the no-op observer (bit-identical schedules either way).
    let tracing = opts.trace
        || opts.metrics
        || opts.explain.is_some()
        || opts.report.is_some()
        || opts.dot_cfg == DotMode::Traced
        || opts.dot_cspdg == DotMode::Traced;
    let mut recorder = Recorder::new();
    let stats = if tracing {
        compile_observed(&mut function, &opts.machine, &config, &mut recorder)
    } else {
        compile_observed(&mut function, &opts.machine, &config, &mut NopObserver)
    }
    .map_err(|e| e.to_string())?;

    if opts.trace {
        eprint!("{}", recorder.report());
    }
    if opts.trace || opts.metrics {
        let mut metrics = Metrics::from_events(recorder.events());
        if opts.metrics {
            for (name, value) in perf_counters(&stats) {
                metrics.record(name, value);
            }
            for (name, value) in memo_counters() {
                metrics.record(name, value);
            }
        }
        eprint!("{metrics}");
    }
    if let Some(path) = &opts.trace_json {
        std::fs::write(path, recorder.to_json_lines())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(inst) = opts.explain {
        let about: Vec<&TraceEvent> = recorder
            .events()
            .filter(|e| e.inst() == Some(inst))
            .collect();
        if about.is_empty() {
            eprintln!("I{inst}: no scheduling decisions recorded");
        } else {
            eprint!("{}", render_report(about.into_iter()));
        }
    }

    let query = TraceQuery::new(recorder.events());
    match opts.dot_cfg {
        DotMode::Off => {}
        DotMode::Plain => {
            let cfg = Cfg::new(&function);
            print!("{}", cfg_to_dot(&function, &cfg));
        }
        DotMode::Traced => {
            print!("{}", traced_cfg_dot(Some(&original), &function, &query));
        }
    }
    match opts.dot_cspdg {
        DotMode::Off => {}
        DotMode::Plain => print!("{}", traced_cspdg_dot(&function, None)),
        DotMode::Traced => print!("{}", traced_cspdg_dot(&function, Some(&query))),
    }
    if opts.dot_cfg == DotMode::Off && opts.dot_cspdg == DotMode::Off {
        print!("{function}");
    }
    if opts.stats {
        eprintln!("{stats}");
    }

    if let Some(path) = &opts.report {
        write_report(opts, path, &original, &function, &recorder, &stats, &memory)?;
    }

    if opts.run {
        run_and_time(opts, &original, &function, &memory)?;
    }
    Ok(())
}

/// `--run`: execute both versions, check observable equivalence, and
/// report simulated cycles (plus the timeline with `--timeline`).
fn run_and_time(
    opts: &Options,
    original: &Function,
    function: &Function,
    memory: &[(i64, i64)],
) -> Result<(), String> {
    let before = execute(original, memory, &ExecConfig::default())
        .map_err(|e| format!("original program: {e}"))?;
    let after = execute(function, memory, &ExecConfig::default())
        .map_err(|e| format!("scheduled program: {e}"))?;
    if !before.equivalent(&after) {
        return Err("scheduling changed observable behaviour (bug!)".into());
    }
    let base = TimingSim::new(original, &opts.machine).run(&before.block_trace);
    let opt = TimingSim::new(function, &opts.machine).run(&after.block_trace);
    eprintln!("printed: {:?}", after.printed());
    eprintln!(
        "cycles on {}: {} -> {} ({:+.1}%)",
        opts.machine.name(),
        base.cycles,
        opt.cycles,
        100.0 * (opt.cycles as f64 - base.cycles as f64) / base.cycles as f64
    );
    if opts.timeline {
        eprint!("{}", opt.timeline(&opts.machine).render(200));
    }
    Ok(())
}

/// `--report <path>`: write the self-contained HTML schedule report.
/// Execution is best-effort — if the program cannot be run (e.g. it
/// expects pre-initialized memory), the report simply omits the cycle
/// counts and timeline.
fn write_report(
    opts: &Options,
    path: &str,
    original: &Function,
    function: &Function,
    recorder: &Recorder,
    stats: &SchedStats,
    memory: &[(i64, i64)],
) -> Result<(), String> {
    let events: Vec<TraceEvent> = recorder.events().cloned().collect();
    let mut perf: Vec<(&'static str, u64)> = perf_counters(stats).to_vec();
    perf.extend(memo_counters());
    let timing = execute(original, memory, &ExecConfig::default())
        .ok()
        .zip(execute(function, memory, &ExecConfig::default()).ok())
        .map(|(before, after)| {
            let base = TimingSim::new(original, &opts.machine).run(&before.block_trace);
            let opt = TimingSim::new(function, &opts.machine).run(&after.block_trace);
            let timeline = opt.timeline(&opts.machine).render(200);
            (base.cycles, opt.cycles, timeline)
        });
    let report = ScheduleReport {
        title: &opts.file,
        machine: opts.machine.name(),
        before: Some(original),
        after: function,
        events: &events,
        timeline: timing.as_ref().map(|(_, _, t)| t.as_str()),
        cycles: timing.as_ref().map(|&(base, opt, _)| (base, opt)),
        perf_counters: &perf,
    };
    std::fs::write(path, schedule_report(&report)).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("gisc: report written to {path}");
    Ok(())
}
