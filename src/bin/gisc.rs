//! `gisc` — the command-line driver: compile tinyc source or assemble IR
//! text, schedule it for a chosen machine, and optionally run it.
//!
//! ```text
//! gisc [OPTIONS] <file>
//!   --tinyc | --asm      input language (default: by extension, .c/.gis)
//!   --level <base|useful|speculative>   scheduling level (default speculative)
//!   --machine <rs6k|wideN|scalar>       machine model (default rs6k)
//!   --no-unroll --no-rotate --no-rename --paper
//!   --branches <N>       max speculation depth (default 1)
//!   --jobs <N>           worker threads for the global passes; 0 = one
//!                        per CPU (default 1; output is identical for any N)
//!   --opt                run the machine-independent optimizer first
//!   --run                execute after scheduling and report cycles
//!   --stats              print scheduler statistics
//!   --dot-cfg            print the CFG in DOT instead of code
//!   --trace              print the scheduler's decision trace (stderr)
//!   --trace=json:<path>  also write the trace as JSON lines to <path>
//!   --explain <inst>     print every decision about one instruction (I8 or 8)
//!   --timeline           with --run: per-cycle unit occupancy and stalls
//! ```
//!
//! Examples:
//!
//! ```text
//! gisc --tinyc --run examples/kernels/minmax.c
//! echo 'CL.0: ... ' | gisc --asm --level useful -
//! ```

use gis_cfg::{cfg_to_dot, Cfg};
use gis_core::{compile_observed, SchedConfig, SchedLevel};
use gis_ir::{parse_function, Function};
use gis_machine::MachineDescription;
use gis_sim::{execute, ExecConfig, TimingSim};
use gis_trace::{render_report, Metrics, NopObserver, Recorder, TraceEvent};
use std::io::Read as _;
use std::process::ExitCode;

struct Options {
    file: String,
    tinyc: Option<bool>,
    level: SchedLevel,
    machine: MachineDescription,
    config_tweaks: Vec<fn(&mut SchedConfig)>,
    branches: usize,
    jobs: usize,
    run: bool,
    stats: bool,
    dot_cfg: bool,
    opt: bool,
    trace: bool,
    trace_json: Option<String>,
    explain: Option<u32>,
    timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: gisc [--tinyc|--asm] [--level base|useful|speculative] \
         [--machine rs6k|wideN|scalar] [--no-unroll] [--no-rotate] [--no-rename] \
         [--paper] [--branches N] [--jobs N] [--opt] [--run] [--stats] [--dot-cfg] \
         [--trace[=json:<path>]] [--explain <inst>] [--timeline] <file|->"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: String::new(),
        tinyc: None,
        level: SchedLevel::Speculative,
        machine: MachineDescription::rs6k(),
        config_tweaks: Vec::new(),
        branches: 1,
        jobs: 1,
        run: false,
        stats: false,
        dot_cfg: false,
        opt: false,
        trace: false,
        trace_json: None,
        explain: None,
        timeline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tinyc" => opts.tinyc = Some(true),
            "--asm" => opts.tinyc = Some(false),
            "--level" => {
                opts.level = match args.next().as_deref() {
                    Some("base") => SchedLevel::BasicBlockOnly,
                    Some("useful") => SchedLevel::Useful,
                    Some("speculative") => SchedLevel::Speculative,
                    _ => usage(),
                }
            }
            "--machine" => {
                let m = args.next().unwrap_or_else(|| usage());
                opts.machine = if m == "rs6k" {
                    MachineDescription::rs6k()
                } else if m == "scalar" {
                    MachineDescription::scalar_pipeline()
                } else if let Some(n) = m.strip_prefix("wide") {
                    MachineDescription::wide(n.parse().unwrap_or_else(|_| usage()))
                } else {
                    usage()
                };
            }
            "--no-unroll" => opts.config_tweaks.push(|c| c.unroll = false),
            "--no-rotate" => opts.config_tweaks.push(|c| c.rotate = false),
            "--no-rename" => opts.config_tweaks.push(|c| c.rename = false),
            "--paper" => opts.config_tweaks.push(|c| {
                c.rename = false;
                c.unroll = false;
                c.rotate = false;
                c.final_bb_pass = false;
            }),
            "--branches" => {
                opts.branches = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--opt" => opts.opt = true,
            "--run" => opts.run = true,
            "--stats" => opts.stats = true,
            "--dot-cfg" => opts.dot_cfg = true,
            "--trace" => opts.trace = true,
            "--explain" => {
                let inst = args.next().unwrap_or_else(|| usage());
                let digits = inst.strip_prefix('I').unwrap_or(&inst);
                opts.explain = Some(digits.parse().unwrap_or_else(|_| usage()));
            }
            "--timeline" => opts.timeline = true,
            "-h" | "--help" => usage(),
            other if other.starts_with("--trace=") => {
                let spec = &other["--trace=".len()..];
                let Some(path) = spec.strip_prefix("json:") else {
                    usage()
                };
                opts.trace = true;
                opts.trace_json = Some(path.to_owned());
            }
            other if opts.file.is_empty() => opts.file = other.to_owned(),
            _ => usage(),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

fn read_input(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    match drive(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gisc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn drive(opts: &Options) -> Result<(), String> {
    let text = read_input(&opts.file)?;
    let is_tinyc = opts
        .tinyc
        .unwrap_or_else(|| opts.file.ends_with(".c") || opts.file.ends_with(".tc"));

    let (mut function, memory): (Function, Vec<(i64, i64)>) = if is_tinyc {
        let program = gis_tinyc::compile_program(&text).map_err(|e| e.to_string())?;
        (program.function, Vec::new())
    } else {
        (
            parse_function(&text).map_err(|e| e.to_string())?,
            Vec::new(),
        )
    };

    let mut config = SchedConfig::speculative();
    config.level = opts.level;
    config.max_speculation_branches = opts.branches;
    config.jobs = opts.jobs;
    for tweak in &opts.config_tweaks {
        tweak(&mut config);
    }

    let original = function.clone();
    if opts.opt {
        let ostats = gis_opt::optimize(&mut function, &gis_opt::OptConfig::default());
        if opts.stats {
            eprintln!("optimizer: {ostats}");
        }
    }
    // Trace when any trace-consuming flag is on; otherwise compile with
    // the no-op observer (bit-identical schedules either way).
    let tracing = opts.trace || opts.explain.is_some();
    let mut recorder = Recorder::new();
    let stats = if tracing {
        compile_observed(&mut function, &opts.machine, &config, &mut recorder)
    } else {
        compile_observed(&mut function, &opts.machine, &config, &mut NopObserver)
    }
    .map_err(|e| e.to_string())?;

    if opts.trace {
        eprint!("{}", recorder.report());
        eprint!("{}", Metrics::from_events(recorder.events()));
    }
    if let Some(path) = &opts.trace_json {
        std::fs::write(path, recorder.to_json_lines())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(inst) = opts.explain {
        let about: Vec<&TraceEvent> = recorder
            .events()
            .filter(|e| e.inst() == Some(inst))
            .collect();
        if about.is_empty() {
            eprintln!("I{inst}: no scheduling decisions recorded");
        } else {
            eprint!("{}", render_report(about.into_iter()));
        }
    }

    if opts.dot_cfg {
        let cfg = Cfg::new(&function);
        print!("{}", cfg_to_dot(&function, &cfg));
    } else {
        print!("{function}");
    }
    if opts.stats {
        eprintln!("{stats}");
    }

    if opts.run {
        let before = execute(&original, &memory, &ExecConfig::default())
            .map_err(|e| format!("original program: {e}"))?;
        let after = execute(&function, &memory, &ExecConfig::default())
            .map_err(|e| format!("scheduled program: {e}"))?;
        if !before.equivalent(&after) {
            return Err("scheduling changed observable behaviour (bug!)".into());
        }
        let base = TimingSim::new(&original, &opts.machine).run(&before.block_trace);
        let opt = TimingSim::new(&function, &opts.machine).run(&after.block_trace);
        eprintln!("printed: {:?}", after.printed());
        eprintln!(
            "cycles on {}: {} -> {} ({:+.1}%)",
            opts.machine.name(),
            base.cycles,
            opt.cycles,
            100.0 * (opt.cycles as f64 - base.cycles as f64) / base.cycles as f64
        );
        if opts.timeline {
            eprint!("{}", opt.timeline(&opts.machine).render(200));
        }
    }
    Ok(())
}
