//! **gis** — Global Instruction Scheduling for Superscalar Machines.
//!
//! A reproduction of Bernstein & Rodeh (PLDI 1991), re-exporting every
//! workspace crate under one roof:
//!
//! * [`ir`] — the RS/6000-flavoured intermediate representation;
//! * [`mod@cfg`] — control-flow analyses (dominators, loops, regions);
//! * [`pdg`] — the program dependence graph (control + data dependences,
//!   liveness, register webs, register pressure);
//! * [`machine`] — parametric machine descriptions;
//! * [`sched`] — the global scheduler and its pipeline (the paper's
//!   contribution), plus profile-guided and n-branch extensions;
//! * [`sim`] — the architectural and timing simulator;
//! * [`tinyc`] — the mini-C frontend;
//! * [`opt`] — machine-independent optimizations;
//! * [`workloads`] — the paper's running example and SPEC-analog kernels.
//!
//! # Example
//!
//! ```
//! use gis::machine::MachineDescription;
//! use gis::sched::{compile, SchedConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = gis::workloads::minmax::figure2_function(99);
//! let stats = compile(&mut f, &MachineDescription::rs6k(), &SchedConfig::speculative())?;
//! assert!(stats.moved_useful > 0);
//! # Ok(())
//! # }
//! ```

pub use gis_cfg as cfg;
pub use gis_core as sched;
pub use gis_ir as ir;
pub use gis_machine as machine;
pub use gis_opt as opt;
pub use gis_pdg as pdg;
pub use gis_sim as sim;
pub use gis_tinyc as tinyc;
pub use gis_workloads as workloads;
